"""The array-namespace seam: one place that decides *which* array library
the modular kernels and the fused plan replayer compute on.

The reducer kernels (:mod:`repro.nums.kernels`) and the fused replayer's
pre-lowered closures never import ``numpy`` functions directly on their
hot paths — they go through an :class:`ArrayNamespace`, a minimal adapter
exposing exactly the array operations the kernels need.  The default
namespace *is* numpy (every attribute is the numpy function itself, so
the seam costs one attribute lookup per kernel call); optional CuPy and
torch namespaces are resolved lazily at plan-lower time, so the same
compiled ``EPL1`` artifact replays on whatever array library the host has
installed — no re-trace, no wire-format change.  Neither accelerator
library is ever imported unless explicitly requested, and requesting an
uninstalled one raises a clear error (``array_backend_available`` lets
callers probe first and skip cleanly).

Scope in this revision: the seam covers the :class:`ReducerKernel`
surface (elementwise modular arithmetic, fused multiply-/add-accumulate)
and the fused replayer's elementwise steps.  NTT-bound steps (rescale,
gadget decomposition) stage through the host via ``to_numpy`` /
``from_numpy`` — that staging boundary is the part that shrinks as more
kernels move behind the seam; bit-identity holds on both sides of it
because the conversions are exact on uint64 data.

Contract (see ``docs/architecture.md``): the namespace registry is
process-level state, resolved once per name and cached; resolved
namespaces (and any kernel tables converted through them) are inherited
copy-on-write by forked serving workers like every other warmed cache.
Nothing here crosses the worker boundary — ``EPL1`` artifacts carry no
array-backend state, and a deserialized plan re-resolves its namespace at
lower time on the replaying host.  The default-name override
(``set_default_array_backend`` / ``REPRO_ARRAY_BACKEND``) mirrors the
reducer-backend registry in :mod:`repro.nums.kernels`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "ArrayNamespace",
    "available_array_backends",
    "array_backend_available",
    "get_array_namespace",
    "register_array_namespace",
    "default_array_backend_name",
    "set_default_array_backend",
    "using_array_backend",
]


def _np_add_reduce(x, axis=0):
    return np.add.reduce(x, axis=axis, dtype=np.uint64)


@dataclass(frozen=True)
class ArrayNamespace:
    """The array operations the kernels and fused replayer dispatch through.

    Every callable follows the numpy signature of the same name
    (``add_reduce`` is ``np.add.reduce`` pinned to a uint64 accumulator);
    ``to_numpy`` / ``from_numpy`` are the explicit host-staging boundary
    and must be exact (lossless) on uint64 data.
    """

    name: str
    asarray: Callable = np.asarray
    empty: Callable = np.empty
    zeros: Callable = np.zeros
    zeros_like: Callable = np.zeros_like
    ones: Callable = np.ones
    minimum: Callable = np.minimum
    mod: Callable = np.mod
    where: Callable = np.where
    stack: Callable = np.stack
    broadcast_to: Callable = np.broadcast_to
    moveaxis: Callable = np.moveaxis
    copyto: Callable = np.copyto
    add_reduce: Callable = _np_add_reduce
    to_numpy: Callable = np.asarray
    from_numpy: Callable = np.asarray

    @property
    def is_host(self) -> bool:
        """Whether arrays of this namespace are plain numpy host arrays."""
        return self.name == "numpy"


def _make_numpy_namespace() -> ArrayNamespace:
    return ArrayNamespace(name="numpy")


def _make_cupy_namespace() -> ArrayNamespace:
    import cupy as cp  # noqa: PLC0415 — deliberate lazy, optional import

    def add_reduce(x, axis=0):
        return cp.sum(x, axis=axis, dtype=cp.uint64)

    return ArrayNamespace(
        name="cupy",
        asarray=cp.asarray,
        empty=cp.empty,
        zeros=cp.zeros,
        zeros_like=cp.zeros_like,
        ones=cp.ones,
        minimum=cp.minimum,
        mod=cp.mod,
        where=cp.where,
        stack=cp.stack,
        broadcast_to=cp.broadcast_to,
        moveaxis=cp.moveaxis,
        copyto=cp.copyto,
        add_reduce=add_reduce,
        to_numpy=cp.asnumpy,
        from_numpy=cp.asarray,
    )


def _make_torch_namespace() -> ArrayNamespace:
    import torch  # noqa: PLC0415 — deliberate lazy, optional import

    def asarray(x, dtype=None):
        t = torch.as_tensor(np.asarray(x) if not torch.is_tensor(x) else x)
        return t.to(torch.uint64) if dtype is not None else t

    def _out(fn):
        def wrapped(*args, out=None):
            return fn(*args, out=out) if out is not None else fn(*args)

        return wrapped

    def add_reduce(x, axis=0):
        return torch.sum(x, dim=axis, dtype=torch.uint64)

    return ArrayNamespace(
        name="torch",
        asarray=asarray,
        empty=lambda shape, dtype=None: torch.empty(shape, dtype=torch.uint64),
        zeros=lambda shape, dtype=None: torch.zeros(shape, dtype=torch.uint64),
        zeros_like=torch.zeros_like,
        ones=lambda shape, dtype=None: torch.ones(shape, dtype=torch.uint64),
        minimum=_out(torch.minimum),
        mod=_out(torch.remainder),
        where=torch.where,
        stack=lambda arrays, axis=0, out=None: torch.stack(
            list(arrays), dim=axis, out=out
        ),
        broadcast_to=torch.broadcast_to,
        moveaxis=torch.movedim,
        copyto=lambda dst, src: dst.copy_(src),
        add_reduce=add_reduce,
        to_numpy=lambda x: x.cpu().numpy(),
        from_numpy=torch.from_numpy,
    )


_FACTORIES: dict[str, Callable[[], ArrayNamespace]] = {
    "numpy": _make_numpy_namespace,
    "cupy": _make_cupy_namespace,
    "torch": _make_torch_namespace,
}
_RESOLVED: dict[str, ArrayNamespace] = {}

_DEFAULT_ARRAY_BACKEND = os.environ.get("REPRO_ARRAY_BACKEND", "numpy")


def register_array_namespace(namespace: ArrayNamespace) -> None:
    """Install (or replace) a namespace under its own name.

    The extension point for array libraries this module has no factory
    for — and for tests, which register numpy-backed stand-ins to
    exercise the non-default (host-staging) replay path without a GPU.
    """
    _RESOLVED[namespace.name] = namespace


def available_array_backends() -> tuple[str, ...]:
    """Names of array backends that resolve on this host (probes imports)."""
    names = set(_RESOLVED) | set(_FACTORIES)
    return tuple(sorted(n for n in names if array_backend_available(n)))


def array_backend_available(name: str) -> bool:
    """Whether ``get_array_namespace(name)`` would succeed."""
    if name in _RESOLVED:
        return True
    factory = _FACTORIES.get(name)
    if factory is None:
        return False
    try:
        _RESOLVED[name] = factory()
    except ImportError:
        return False
    return True


def get_array_namespace(
    name: "str | ArrayNamespace | None" = None,
) -> ArrayNamespace:
    """Resolve a namespace by name (process default when ``None``).

    Accepts an already-resolved :class:`ArrayNamespace` unchanged so
    kernel constructors can take either form.  Raises ``ValueError`` for
    unknown names and ``ImportError`` (with the backend named) when the
    underlying library is not installed.
    """
    if isinstance(name, ArrayNamespace):
        return name
    key = name or default_array_backend_name()
    resolved = _RESOLVED.get(key)
    if resolved is not None:
        return resolved
    factory = _FACTORIES.get(key)
    if factory is None:
        raise ValueError(
            f"unknown array backend {key!r}; available: "
            f"{tuple(sorted(set(_RESOLVED) | set(_FACTORIES)))}"
        )
    try:
        resolved = factory()
    except ImportError as exc:
        raise ImportError(
            f"array backend {key!r} requested but not installed: {exc}"
        ) from exc
    _RESOLVED[key] = resolved
    return resolved


def default_array_backend_name() -> str:
    """The process-wide default array backend name."""
    return _DEFAULT_ARRAY_BACKEND


def set_default_array_backend(name: str) -> str:
    """Switch the process-wide default; returns the previous name."""
    global _DEFAULT_ARRAY_BACKEND
    if name not in _FACTORIES and name not in _RESOLVED:
        raise ValueError(
            f"unknown array backend {name!r}; available: "
            f"{tuple(sorted(set(_RESOLVED) | set(_FACTORIES)))}"
        )
    previous = _DEFAULT_ARRAY_BACKEND
    _DEFAULT_ARRAY_BACKEND = name
    return previous


class using_array_backend:
    """Context manager scoping a default array-backend override.

    >>> with using_array_backend("cupy"):
    ...     executor = plan.fused()
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._previous: str | None = None

    def __enter__(self) -> str:
        self._previous = set_default_array_backend(self._name)
        return self._name

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_default_array_backend(self._previous)
