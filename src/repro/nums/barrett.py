"""Barrett modular reduction — the baseline reducer of Table I.

Barrett reduction approximates the quotient ``x // q`` with two shifted
multiplications by a precomputed constant ``mu = floor(2^(2r) / q)``.
It needs no domain conversion but costs the most multiplier area of the
three candidates the paper compares (Table I: 35054 µm², 4 pipeline
stages), which is why ABC-FHE rejects it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BarrettReducer"]


@dataclass(frozen=True)
class BarrettReducer:
    """Reduces ``x in [0, q^2)`` modulo ``q`` via the Barrett algorithm.

    Attributes:
        q: odd modulus.
        r: word size in bits (``2^r > q``).
        mu: the precomputed reciprocal ``floor(2^(2r) / q)``.
    """

    q: int
    r: int
    mu: int

    # Hardware accounting used by the Table I area model: Barrett needs the
    # operand product plus two full-width quotient-estimation multiplies.
    NUM_MULTIPLIERS = 3
    PIPELINE_STAGES = 4

    @classmethod
    def for_modulus(cls, q: int) -> "BarrettReducer":
        """Build a reducer for an odd modulus."""
        if q < 3 or q % 2 == 0:
            raise ValueError(f"Barrett reducer needs an odd modulus >= 3, got {q}")
        r = q.bit_length()
        mu = (1 << (2 * r)) // q
        return cls(q=q, r=r, mu=mu)

    def reduce(self, x: int) -> int:
        """Return ``x mod q`` for ``0 <= x < q^2``."""
        if x < 0 or x >= self.q * self.q:
            raise ValueError(f"Barrett input must be in [0, q^2); got {x}")
        quotient_estimate = ((x >> (self.r - 1)) * self.mu) >> (self.r + 1)
        t = x - quotient_estimate * self.q
        # The estimate undershoots by at most 2.
        while t >= self.q:
            t -= self.q
        return t

    def mul(self, a: int, b: int) -> int:
        """Modular product of two residues."""
        return self.reduce((a % self.q) * (b % self.q))
