"""Deterministic Miller–Rabin primality testing for 64-bit-class integers.

The NTT-friendly prime search (`repro.nums.primegen`) scans thousands of
candidates of 32–60 bits; a deterministic witness set makes the search
reproducible with no false positives in that range.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime"]

# These witnesses are deterministic for all n < 3.3 * 10^24
# (Sorenson & Webster 2015), far beyond the 60-bit primes used here.
_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for n < 3.3e24 (covers all FHE primes)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for a in _WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate
