"""Number-theory substrate: primes, modular reduction, CRT.

This package is the exact-integer foundation of the CKKS library and the
reference model for the accelerator's modular-arithmetic hardware:

* :mod:`repro.nums.primality` — deterministic Miller–Rabin;
* :mod:`repro.nums.primegen` — NTT-friendly prime search (paper Eq. 8);
* :mod:`repro.nums.modular` — scalar helpers + legacy vectorized wrappers;
* :mod:`repro.nums.kernels` — pluggable vectorized reducer backends
  (``generic-split`` / ``barrett`` / ``montgomery``) with the registry
  and the :class:`~repro.nums.kernels.ReducerSpec` Table I accounting;
* :mod:`repro.nums.backend` — the array-namespace seam the kernels and
  the fused plan replayer compute through (numpy default; optional
  CuPy/torch resolved lazily, never imported unless requested);
* :mod:`repro.nums.barrett` / :mod:`repro.nums.montgomery` — the three
  scalar reducer designs compared in Table I (exact-int references);
* :mod:`repro.nums.crt` — RNS decompose / CRT combine.
"""

from repro.nums.backend import (
    ArrayNamespace,
    array_backend_available,
    available_array_backends,
    default_array_backend_name,
    get_array_namespace,
    register_array_namespace,
    set_default_array_backend,
    using_array_backend,
)
from repro.nums.barrett import BarrettReducer
from repro.nums.crt import CrtSystem
from repro.nums.kernels import (
    REDUCER_SPECS,
    BarrettKernel,
    GenericSplitKernel,
    MontgomeryKernel,
    ReducerKernel,
    ReducerSpec,
    available_backends,
    default_backend_name,
    get_backend,
    kernel_for_modulus,
    make_kernel,
    set_default_backend,
    using_backend,
)
from repro.nums.modular import (
    addmod_vec,
    centered,
    mod_inv,
    mod_pow,
    mulmod_vec,
    negmod_vec,
    nth_root_of_unity,
    powmod_vec,
    primitive_root,
    submod_vec,
)
from repro.nums.montgomery import MontgomeryReducer, NttFriendlyMontgomeryReducer
from repro.nums.primality import is_prime, next_prime
from repro.nums.primegen import NttFriendlyPrime, count_primes, find_primes, prime_chain

__all__ = [
    "REDUCER_SPECS",
    "ArrayNamespace",
    "array_backend_available",
    "available_array_backends",
    "default_array_backend_name",
    "get_array_namespace",
    "register_array_namespace",
    "set_default_array_backend",
    "using_array_backend",
    "BarrettKernel",
    "BarrettReducer",
    "CrtSystem",
    "GenericSplitKernel",
    "MontgomeryKernel",
    "MontgomeryReducer",
    "ReducerKernel",
    "ReducerSpec",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "kernel_for_modulus",
    "make_kernel",
    "set_default_backend",
    "using_backend",
    "NttFriendlyMontgomeryReducer",
    "NttFriendlyPrime",
    "addmod_vec",
    "centered",
    "count_primes",
    "find_primes",
    "is_prime",
    "mod_inv",
    "mod_pow",
    "mulmod_vec",
    "negmod_vec",
    "next_prime",
    "nth_root_of_unity",
    "powmod_vec",
    "prime_chain",
    "primitive_root",
    "submod_vec",
]
