"""Number-theory substrate: primes, modular reduction, CRT.

This package is the exact-integer foundation of the CKKS library and the
reference model for the accelerator's modular-arithmetic hardware:

* :mod:`repro.nums.primality` — deterministic Miller–Rabin;
* :mod:`repro.nums.primegen` — NTT-friendly prime search (paper Eq. 8);
* :mod:`repro.nums.modular` — scalar + vectorized modular kernels;
* :mod:`repro.nums.barrett` / :mod:`repro.nums.montgomery` — the three
  reducer designs compared in Table I;
* :mod:`repro.nums.crt` — RNS decompose / CRT combine.
"""

from repro.nums.barrett import BarrettReducer
from repro.nums.crt import CrtSystem
from repro.nums.modular import (
    addmod_vec,
    centered,
    mod_inv,
    mod_pow,
    mulmod_vec,
    negmod_vec,
    nth_root_of_unity,
    powmod_vec,
    primitive_root,
    submod_vec,
)
from repro.nums.montgomery import MontgomeryReducer, NttFriendlyMontgomeryReducer
from repro.nums.primality import is_prime, next_prime
from repro.nums.primegen import NttFriendlyPrime, count_primes, find_primes, prime_chain

__all__ = [
    "BarrettReducer",
    "CrtSystem",
    "MontgomeryReducer",
    "NttFriendlyMontgomeryReducer",
    "NttFriendlyPrime",
    "addmod_vec",
    "centered",
    "count_primes",
    "find_primes",
    "is_prime",
    "mod_inv",
    "mod_pow",
    "mulmod_vec",
    "negmod_vec",
    "next_prime",
    "nth_root_of_unity",
    "powmod_vec",
    "prime_chain",
    "primitive_root",
    "submod_vec",
]
