"""Pluggable vectorized modular-reduction backends — the software Table I.

The paper's central hardware argument (Section III, Table I) is that the
choice of modular reducer dominates accelerator cost.  This module makes
that choice a *software* knob as well: three interchangeable uint64 numpy
kernels compute ``a * b mod q`` with identical results but very different
instruction mixes, mirroring the area/pipeline trade-offs of the hardware
candidates:

* ``generic-split`` — the seed implementation: an 18-bit operand split
  with six ``np.uint64 %`` divisions per multiply.  Correct and simple,
  but integer division is the slowest ALU op on every ISA; kept as the
  reference baseline.
* ``barrett`` — quotient estimation by two shifted multiplications with a
  per-prime precomputed ``mu = floor(2^{2r}/q)``; every ``%`` becomes
  mul/shift/conditional-subtract (Table I row 1).
* ``montgomery`` — word-size REDC with ``R = 2^64``; constants (twiddle
  tables, scalars) are kept in the Montgomery domain so each product
  costs a single REDC (Table I rows 2–3; the NTT-friendly variant differs
  from vanilla Montgomery only in hardware cost, not semantics).

Every kernel instance is bound to a modulus *array* — a scalar for one
prime or an ``(L, 1)``/``(L, 1, 1)`` column for per-row broadcasting over
whole ``(L, N)`` RNS residue matrices — and carries the precomputed
tables it needs.  All kernels assume **canonical inputs** in ``[0, q)``;
the RNS layers maintain that invariant, and ``reduce`` is available for
values up to ``q^2``.

The :class:`ReducerSpec` table is the single source of truth tying each
algorithm to its Table I hardware accounting (multiplier equivalents and
pipeline depth); :mod:`repro.accel.calibration` derives its area-model
constants from it so the software kernels and the accelerator model are
driven by the same data.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

__all__ = [
    "ReducerSpec",
    "REDUCER_SPECS",
    "ReducerKernel",
    "GenericSplitKernel",
    "BarrettKernel",
    "MontgomeryKernel",
    "KERNEL_LIMIT_BITS",
    "available_backends",
    "get_backend",
    "make_kernel",
    "kernel_for_modulus",
    "default_backend_name",
    "set_default_backend",
    "using_backend",
]

# Kernels accept moduli up to 41 bits: the generic-split path needs
# a * b_hi < 2^64 with an 18-bit split, and Barrett's widened shifts assume
# q^2 < 2^82.  The paper's 32–36-bit double-scale primes fit with margin.
KERNEL_LIMIT_BITS = 41

_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)
_S32 = _U64(32)


# ---------------------------------------------------------------------------
# Hardware accounting shared with the accelerator's Table I area model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReducerSpec:
    """One Table I row: hardware accounting for a reduction algorithm.

    Attributes:
        algorithm: Table I key (``barrett`` / ``montgomery`` /
            ``ntt_friendly``).
        multiplier_equivalents: full ``bw^2`` multiplier arrays the
            datapath instantiates (fit to Table I, residual < 0.2 %).
        pipeline_stages: pipeline depth reported in Table I.
        paper_area_um2: the ground-truth 28 nm area for regression checks.
    """

    algorithm: str
    multiplier_equivalents: float
    pipeline_stages: int
    paper_area_um2: int


REDUCER_SPECS: dict[str, ReducerSpec] = {
    "barrett": ReducerSpec("barrett", 4.0, 4, 35054),
    "montgomery": ReducerSpec("montgomery", 2.0, 3, 19255),
    "ntt_friendly": ReducerSpec("ntt_friendly", 1.0, 3, 11328),
}
"""Table I rows, keyed by algorithm name (28 nm @ 600 MHz)."""


# ---------------------------------------------------------------------------
# Wide helper arithmetic on uint64 lanes
# ---------------------------------------------------------------------------
#
# numpy integer arithmetic wraps modulo 2^64, which the carry chains below
# account for exactly.  Conditionals are expressed with np.minimum instead
# of np.where: for values known to sit in a narrow band, the wrapped
# "wrong" branch is astronomically large, so the minimum selects the
# correct branch in one cheap SIMD pass (np.where costs ~25x more).

_SPLIT20 = _U64(20)
_MASK20 = _U64((1 << 20) - 1)


def _mul128_41(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact 128-bit product of two < 2^42 operands as a (hi, lo) pair.

    Splits ``b`` at 20 bits so both partial products ``p1 = a * (b >> 20)``
    and ``p0 = a * (b & mask)`` stay inside uint64; the high word is
    ``p1 >> 44`` plus the carry out of the wrapped low-word sum.
    """
    b_hi = b >> _SPLIT20
    b_lo = b & _MASK20
    p1 = a * b_hi
    p0 = a * b_lo
    p1s = p1 << _SPLIT20
    lo = p1s + p0
    hi = (p1 >> _U64(44)) + (lo < p1s)
    return hi, lo


def _csub(x: np.ndarray, q) -> np.ndarray:
    """One conditional subtract: maps [0, 2q) into [0, q).

    Relies on wrap-around: when ``x < q`` the subtraction wraps to a huge
    value and the minimum keeps ``x``.
    """
    return np.minimum(x, x - q)


# ---------------------------------------------------------------------------
# Kernel base class
# ---------------------------------------------------------------------------


class ReducerKernel:
    """Vectorized modular arithmetic bound to one or more moduli.

    ``moduli`` may be a Python int, or any uint64-convertible array whose
    shape broadcasts against the operand arrays (e.g. an ``(L, 1)`` column
    against ``(L, N)`` residue matrices).  Subclasses add precomputed
    per-modulus tables in ``_precompute``.

    All operands are assumed canonical (``0 <= x < q`` elementwise) except
    where noted; outputs are always canonical.
    """

    name: ClassVar[str]
    spec: ClassVar[ReducerSpec | None] = None
    #: Whether :meth:`pre` is a cheap vectorized transform.  Long-lived
    #: constant tensors (switching keys) are cached pre-formed only when
    #: this holds; Barrett's Shoup reciprocals need exact big-int division
    #: per element, so it opts out and hot paths use plain mul instead.
    constant_pre_cheap: ClassVar[bool] = True

    def __init__(self, moduli, xp=None) -> None:
        from repro.nums.backend import get_array_namespace

        #: The array namespace every vectorized op dispatches through
        #: (numpy unless the caller — e.g. a fused replayer lowering for
        #: an accelerator — asks otherwise).  Tables are precomputed on
        #: the host and moved into the namespace once, at construction.
        self.xp = get_array_namespace(xp)
        q = np.asarray(moduli, dtype=np.uint64)
        flat = [int(v) for v in np.atleast_1d(q).ravel()]
        for v in flat:
            if v < 2:
                raise ValueError(f"kernels need moduli >= 2, got {v}")
            if v.bit_length() > KERNEL_LIMIT_BITS:
                raise ValueError(
                    f"modulus {v} has {v.bit_length()} bits; kernels support at "
                    f"most {KERNEL_LIMIT_BITS} bits (paper uses 32–36-bit primes)"
                )
        self.q = q
        # Deferred-accumulation budget: partial sums must fit both uint64
        # and reduce()'s [0, q^2) domain.  Precomputed so the fused hot
        # paths never touch host-side scalar reductions of (possibly
        # device-resident) q.
        self._acc_headroom = min(
            ((1 << 64) - 1) // max(max(flat) - 1, 1), min(flat)
        )
        self._precompute()
        if not self.xp.is_host:
            self._move_tables()

    def _precompute(self) -> None:  # pragma: no cover - overridden
        pass

    def _move_tables(self) -> None:
        """Convert the moduli and every precomputed table into the active
        array namespace (one-time device upload for non-numpy namespaces)."""
        for attr, value in list(self.__dict__.items()):
            if isinstance(value, np.ndarray):
                setattr(self, attr, self.xp.asarray(value))

    def _csub_into(self, x, q, out=None):
        """One conditional subtract (see :func:`_csub`), namespace-routed,
        optionally writing into a preallocated output buffer."""
        return self.xp.minimum(x, x - q, out=out)

    def _table(self, fn) -> np.ndarray:
        """Per-modulus precomputed table, shaped like ``self.q``.

        ``fn`` maps one Python-int modulus to one uint64-representable
        value; the result follows the moduli array's (possibly 0-d) shape
        so it broadcasts wherever ``self.q`` does.
        """
        shape = np.shape(self.q)
        vals = np.array(
            [fn(int(v)) for v in np.atleast_1d(self.q).ravel()], dtype=np.uint64
        )
        return vals.reshape(shape) if shape else vals.reshape(())

    # -- multiplicative ------------------------------------------------

    def mul(self, a: np.ndarray, b, out=None) -> np.ndarray:
        """Elementwise ``a * b mod q`` for canonical operands."""
        raise NotImplementedError

    def pre(self, b) -> np.ndarray:
        """Precompute a constant operand for repeated :meth:`mul_pre`.

        The returned array is in whatever internal form the backend
        multiplies fastest against (Montgomery domain for ``montgomery``,
        plain residues otherwise).
        """
        return self.xp.asarray(b, dtype=np.uint64)

    def mul_pre(self, a: np.ndarray, b_pre: np.ndarray, out=None) -> np.ndarray:
        """``a * b mod q`` where ``b_pre`` came from :meth:`pre`."""
        return self.mul(a, b_pre, out=out)

    def mul_accumulate(self, a: np.ndarray, b, axis: int = 0, out=None) -> np.ndarray:
        """Fused ``sum_t a[t] * b[t] mod q`` along ``axis`` — one reduction.

        The inner-product primitive behind batched key switching: products
        are reduced to canonical form, but the *accumulation* is deferred —
        terms are summed as raw uint64 and reduced once at the end.  With
        canonical terms below ``2^41`` the uint64 headroom fits ``2^23``
        addends, far beyond any RNS digit count; longer axes fall back to
        chunked partial sums so the result stays exact.  Canonical outputs
        make the op bit-identical across backends.
        """
        return self._accumulate(self.mul(a, b), axis, out=out)

    def mul_pre_accumulate(
        self, a: np.ndarray, b_pre: np.ndarray, axis: int = 0, out=None
    ) -> np.ndarray:
        """:meth:`mul_accumulate` where ``b`` came from :meth:`pre`."""
        return self._accumulate(self.mul_pre(a, b_pre), axis, out=out)

    def add_accumulate(self, terms: np.ndarray, axis: int = 0, out=None) -> np.ndarray:
        """Fused ``sum_t terms[t] mod q`` along ``axis`` — one reduction.

        The fused form of an add-reduction tree: canonical addends are
        summed as raw uint64 and reduced once.  Canonical residues are
        unique, so the result is bit-identical to folding the same terms
        through a chain of binary :meth:`add` calls — which is what lets
        the plan fusion pass collapse accumulation chains into one
        dispatch without perturbing ciphertext bytes.
        """
        return self._accumulate(self.xp.asarray(terms, dtype=np.uint64), axis, out=out)

    def _accumulate(self, prod: np.ndarray, axis: int, out=None) -> np.ndarray:
        """Sum canonical products along ``axis`` with deferred reduction."""
        xp = self.xp
        headroom = self._acc_headroom
        terms = prod.shape[axis]
        if terms <= headroom:
            acc = xp.add_reduce(prod, axis=axis)
        else:  # pragma: no cover - needs > 2^23 digit rows
            prod = xp.moveaxis(prod, axis, 0)
            acc = xp.zeros(prod.shape[1:], dtype=np.uint64)
            for start in range(0, terms, headroom):
                part = xp.add_reduce(prod[start : start + headroom], axis=0)
                acc = self.add(self.reduce(acc), self.reduce(part))
        return self.reduce(acc, out=out)

    def pow(self, a: np.ndarray, exponent: int) -> np.ndarray:
        """Elementwise ``a ** exponent mod q`` by square-and-multiply."""
        if exponent < 0:
            raise ValueError("negative exponents not supported; invert first")
        a = np.asarray(a, dtype=np.uint64)
        result = np.ones(np.broadcast_shapes(a.shape, np.shape(self.q)), dtype=np.uint64)
        base = a
        e = exponent
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    # -- additive ------------------------------------------------------

    def add(self, a: np.ndarray, b, out=None) -> np.ndarray:
        """Elementwise modular addition (canonical in, canonical out)."""
        xp = self.xp
        a = xp.asarray(a, dtype=np.uint64)
        b = xp.asarray(b, dtype=np.uint64)
        return self._csub_into(a + b, self.q, out=out)

    def sub(self, a: np.ndarray, b, out=None) -> np.ndarray:
        """Elementwise modular subtraction (canonical in, canonical out)."""
        xp = self.xp
        a = xp.asarray(a, dtype=np.uint64)
        b = xp.asarray(b, dtype=np.uint64)
        d = a - b  # wraps when a < b; then d + q is the canonical value
        return xp.minimum(d, d + self.q, out=out)

    def neg(self, a: np.ndarray, out=None) -> np.ndarray:
        """Elementwise modular negation."""
        xp = self.xp
        a = xp.asarray(a, dtype=np.uint64)
        # q - a is canonical except at a == 0, where 0 - a == 0 wins the min.
        return xp.minimum(self.q - a, _U64(0) - a, out=out)

    # -- reduction -----------------------------------------------------

    def reduce(self, x: np.ndarray, out=None) -> np.ndarray:
        """Reduce arbitrary values in ``[0, q^2)`` to canonical form."""
        return self.xp.mod(self.xp.asarray(x, dtype=np.uint64), self.q, out=out)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(q={np.atleast_1d(self.q).ravel().tolist()})"


# ---------------------------------------------------------------------------
# generic-split: the seed's division-based kernel, generalized to array q
# ---------------------------------------------------------------------------


class GenericSplitKernel(ReducerKernel):
    """18-bit operand split with ``%`` reductions — the seed hot path.

    No Table I row: this is a pure-software baseline no hardware designer
    would build (division is neither cheap nor pipelinable), retained so
    the speedup of the reducer-aware kernels stays measurable.
    """

    name = "generic-split"
    spec = None

    _SPLIT = _U64(18)
    _SPLIT_MASK = _U64((1 << 18) - 1)

    def mul(self, a: np.ndarray, b, out=None) -> np.ndarray:
        q = self.q
        xp = self.xp
        a = xp.asarray(a, dtype=np.uint64)
        b = xp.asarray(b, dtype=np.uint64)
        b_hi = b >> self._SPLIT
        b_lo = b & self._SPLIT_MASK
        hi = (a * b_hi) % q
        hi = (hi << self._SPLIT) % q
        lo = (a * b_lo) % q
        return xp.mod(hi + lo, q, out=out)


# ---------------------------------------------------------------------------
# barrett: shift-multiply quotient estimation with precomputed mu
# ---------------------------------------------------------------------------


class BarrettKernel(ReducerKernel):
    """Vectorized Barrett reduction (Table I row 1).

    For each modulus, ``mu = floor(2^{2r} / q)`` with ``r = bits(q)``.
    A product ``x = a*b < q^2`` is reduced by estimating the quotient as
    ``((x >> (r-1)) * mu) >> (r+1)``; the estimate undershoots by at most
    2, fixed by two conditional subtracts.  The 82-bit intermediates are
    carried as (hi, lo) uint64 pairs from :func:`_mul128`.
    """

    name = "barrett"
    spec = REDUCER_SPECS["barrett"]
    constant_pre_cheap = False  # pre() divides exact 64-bit-shifted big ints

    # mul_pre uses Shoup's variant of the same shift-multiply idea: for a
    # *constant* operand w the whole scaled reciprocal w' = floor(w*2^64/q)
    # is precomputable, so the quotient estimate needs only two shifted
    # multiplications by the (static) high pieces of w'.
    _SHOUP_S2 = _U64(21)
    _SHOUP_S1 = _U64(42)

    def _precompute(self) -> None:
        table = self._table
        # mu = floor(2^{2r}/q) < 2^{r+1} <= 2^42, statically split at 21 bits
        # so the quotient-estimation product stays inside uint64.
        self._mu_hi = table(lambda v: ((1 << (2 * v.bit_length())) // v) >> 21)
        self._mu_lo = table(lambda v: ((1 << (2 * v.bit_length())) // v) & ((1 << 21) - 1))
        self._s1 = table(lambda v: v.bit_length() - 1)  # x >> (r-1)
        self._s1c = table(lambda v: 65 - v.bit_length())  # hi's share of that shift
        self._s2 = table(lambda v: v.bit_length() + 1)  # ... >> (r+1)
        self._s3 = table(lambda v: max(v.bit_length() - 20, 1))  # mu_hi's share
        self._s4 = table(lambda v: max(v.bit_length() - 21, 1))  # fast-path x-shift
        self._q2 = table(lambda v: 2 * v)
        # For moduli of >= 22 bits (every RNS prime; toy moduli fall back),
        # x >> (r-1) = (p1 + (p0 >> 20)) >> (r-21) exactly by the nested-
        # floor identity — no 128-bit (hi, lo) assembly needed.
        self._wide = all(
            int(v).bit_length() >= 22 for v in np.atleast_1d(self.q).ravel()
        )

    def _reduce_wide(self, hi: np.ndarray, lo: np.ndarray, out=None) -> np.ndarray:
        """Map an exact (hi, lo) value < q^2 to its canonical residue.

        ``q_est = ((x >> (r-1)) * mu) >> (r+1)`` with the mu product split
        as ``mu = mu_hi * 2^21 + mu_lo``; distributing the floor over the
        two partials undershoots by at most one more than classic Barrett's
        two, so the remainder lands in [0, 4q) and two conditional
        subtracts (one by 2q, one by q) finish the reduction.
        """
        xs = (lo >> self._s1) | (hi << self._s1c)  # exact x >> (r-1), < 2^{r+1}
        q_est = ((xs * self._mu_hi) >> self._s3) + ((xs * self._mu_lo) >> self._s2)
        t = lo - q_est * self.q  # exact mod 2^64; true value in [0, 4q)
        t = self._csub_into(t, self._q2)
        return self._csub_into(t, self.q, out=out)

    def mul(self, a: np.ndarray, b, out=None) -> np.ndarray:
        xp = self.xp
        a = xp.asarray(a, dtype=np.uint64)
        b = xp.asarray(b, dtype=np.uint64)
        if not self._wide:
            return self._reduce_wide(*_mul128_41(a, b), out=out)
        b_hi = b >> _SPLIT20
        b_lo = b & _MASK20
        p1 = a * b_hi
        p0 = a * b_lo
        xs = (p1 + (p0 >> _SPLIT20)) >> self._s4  # exact x >> (r-1)
        q_est = ((xs * self._mu_hi) >> self._s3) + ((xs * self._mu_lo) >> self._s2)
        t = a * b - q_est * self.q  # exact mod 2^64; true value in [0, 4q)
        t = self._csub_into(t, self._q2)
        return self._csub_into(t, self.q, out=out)

    def reduce(self, x: np.ndarray, out=None) -> np.ndarray:
        # Single-word input: hi = 0, so _reduce_wide's (lo >> s1) | (hi <<
        # s1c) collapses to the plain shift — same xs, two array ops and an
        # allocation cheaper.
        x = self.xp.asarray(x, dtype=np.uint64)
        xs = x >> self._s1
        q_est = ((xs * self._mu_hi) >> self._s3) + ((xs * self._mu_lo) >> self._s2)
        t = x - q_est * self.q
        t = self._csub_into(t, self._q2)
        return self._csub_into(t, self.q, out=out)

    def pre(self, b) -> np.ndarray:
        """Stack ``[w, w' >> 43, (w' >> 22) & mask21]`` for Shoup quotients.

        ``w' = floor(w * 2^64 / q)`` is computed exactly on Python ints
        (a one-time cost — pre-forms are cached with the twiddle tables).
        Only the top two 21-bit pieces of w' are kept: the discarded low
        piece contributes < 1 to the quotient estimate, folded into the
        conditional-subtract budget.
        """
        b = np.asarray(self.xp.to_numpy(b), dtype=np.uint64)
        q_host = np.asarray(self.xp.to_numpy(self.q), dtype=np.uint64)
        shape = np.broadcast_shapes(b.shape, np.shape(q_host))
        # 0-d object arrays decay to Python ints under ufuncs; compute 1-d.
        shoup = (np.atleast_1d(b).astype(object) << 64) // np.atleast_1d(q_host).astype(object)
        w2 = (shoup >> 43).astype(np.uint64).reshape(shape)
        w1 = ((shoup >> 22) & ((1 << 21) - 1)).astype(np.uint64).reshape(shape)
        return self.xp.asarray(np.stack([np.broadcast_to(b, shape), w2, w1]))

    def mul_pre(self, a: np.ndarray, b_pre: np.ndarray, out=None) -> np.ndarray:
        """``a * w mod q`` via the precomputed Shoup pieces of ``w``.

        ``q_est = mulhi(a, w')`` undershoots by at most 2 (two dropped
        floor corrections plus the discarded low piece), so the remainder
        sits in [0, 4q) and the usual 2q/q cascade finishes.
        """
        a = self.xp.asarray(a, dtype=np.uint64)
        w, w2, w1 = b_pre[0], b_pre[1], b_pre[2]
        q_est = ((a * w2) >> self._SHOUP_S2) + ((a * w1) >> self._SHOUP_S1)
        t = a * w - q_est * self.q
        t = self._csub_into(t, self._q2)
        return self._csub_into(t, self.q, out=out)


# ---------------------------------------------------------------------------
# montgomery: word-size REDC with constants kept in the Montgomery domain
# ---------------------------------------------------------------------------


class MontgomeryKernel(ReducerKernel):
    """Vectorized Montgomery REDC with ``R = 2^64`` (Table I rows 2–3).

    ``mul(a, b)`` converts ``b`` into the Montgomery domain on the fly
    (two REDCs total); hot paths precompute constants with :meth:`pre`
    so every butterfly costs a single REDC — the software analogue of
    keeping operands in the Montgomery domain across NTT stages.
    """

    name = "montgomery"
    spec = REDUCER_SPECS["montgomery"]

    def _precompute(self) -> None:
        table = self._table
        for v in np.atleast_1d(self.q).ravel():
            if int(v) % 2 == 0:
                raise ValueError(
                    f"Montgomery needs odd moduli (q^-1 mod 2^64 must exist), got {int(v)}"
                )
        self._ninv = table(lambda v: (-pow(v, -1, 1 << 64)) % (1 << 64))
        self._r2 = table(lambda v: (1 << 128) % v)
        # 32/9-bit split of q for the m*q high-word product (m is full-width).
        self._q_lo32 = table(lambda v: v & 0xFFFFFFFF)
        self._q_hi32 = table(lambda v: v >> 32)

    def _mulhi_mq(self, m: np.ndarray) -> np.ndarray:
        """High 64 bits of ``m * q`` for full-width ``m`` (q < 2^41)."""
        m_lo = m & _MASK32
        m_hi = m >> _S32
        ll = m_lo * self._q_lo32
        lh = m_lo * self._q_hi32
        hl = m_hi * self._q_lo32
        mid = (ll >> _S32) + (lh & _MASK32) + (hl & _MASK32)
        return m_hi * self._q_hi32 + (lh >> _S32) + (hl >> _S32) + (mid >> _S32)

    def _redc(self, hi: np.ndarray, lo: np.ndarray, out=None) -> np.ndarray:
        """REDC of a (hi, lo) value ``t < q * 2^64``: ``t * 2^-64 mod q``."""
        m = lo * self._ninv  # wraps mod 2^64 — exactly t * (-q^-1) mod R
        # t + m*q has zero low word; its high word is hi + mulhi(m, q) plus
        # the carry out of the low word, which is 1 iff lo != 0 (mq_lo ≡ -lo).
        u = hi + self._mulhi_mq(m) + (lo != 0)
        return self._csub_into(u, self.q, out=out)

    def to_montgomery(self, a: np.ndarray) -> np.ndarray:
        """Map canonical residues into the Montgomery domain (``a * R mod q``)."""
        a = self.xp.asarray(a, dtype=np.uint64)
        return self._redc(*_mul128_41(a, self._r2))

    def from_montgomery(self, a_mont: np.ndarray) -> np.ndarray:
        """Map Montgomery-domain values back to canonical residues."""
        a_mont = self.xp.asarray(a_mont, dtype=np.uint64)
        return self._redc(self.xp.zeros_like(a_mont), a_mont)

    def mul(self, a: np.ndarray, b, out=None) -> np.ndarray:
        a = self.xp.asarray(a, dtype=np.uint64)
        b = self.xp.asarray(b, dtype=np.uint64)
        return self._redc(*_mul128_41(a, self.to_montgomery(b)), out=out)

    def pre(self, b) -> np.ndarray:
        return self.to_montgomery(self.xp.asarray(b, dtype=np.uint64))

    def mul_pre(self, a: np.ndarray, b_pre: np.ndarray, out=None) -> np.ndarray:
        a = self.xp.asarray(a, dtype=np.uint64)
        return self._redc(*_mul128_41(a, b_pre), out=out)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, type[ReducerKernel]] = {
    GenericSplitKernel.name: GenericSplitKernel,
    BarrettKernel.name: BarrettKernel,
    MontgomeryKernel.name: MontgomeryKernel,
}

# Barrett is the default: it needs no domain bookkeeping and replaces every
# division with mul/shift/csub — the biggest portable speed lever.  Override
# process-wide with REPRO_REDUCER_BACKEND or set_default_backend().
_DEFAULT_BACKEND = os.environ.get("REPRO_REDUCER_BACKEND", "barrett")


def available_backends() -> tuple[str, ...]:
    """Names of all registered reducer backends."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str | None = None) -> type[ReducerKernel]:
    """Look up a backend class by name (default backend when ``None``)."""
    key = name or _DEFAULT_BACKEND
    try:
        return _BACKENDS[key]
    except KeyError:
        raise ValueError(
            f"unknown reducer backend {key!r}; available: {available_backends()}"
        ) from None


def default_backend_name() -> str:
    """The process-wide default backend name."""
    if _DEFAULT_BACKEND not in _BACKENDS:
        raise ValueError(
            f"REPRO_REDUCER_BACKEND={_DEFAULT_BACKEND!r} is not one of "
            f"{available_backends()}"
        )
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> str:
    """Switch the process-wide default backend; returns the previous name."""
    global _DEFAULT_BACKEND
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown reducer backend {name!r}; available: {available_backends()}"
        )
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous


class using_backend:
    """Context manager scoping a default-backend override.

    >>> with using_backend("montgomery"):
    ...     ct = ctx.encrypt(msg)
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._previous: str | None = None

    def __enter__(self) -> str:
        self._previous = set_default_backend(self._name)
        return self._name

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_default_backend(self._previous)


def make_kernel(moduli, backend: str | None = None, xp=None) -> ReducerKernel:
    """Instantiate a kernel for a modulus (array) under a backend.

    ``xp`` selects the array namespace (name or :class:`ArrayNamespace`)
    the kernel computes on; ``None`` means the process default (numpy
    unless overridden).
    """
    return get_backend(backend)(moduli, xp=xp)


_SCALAR_KERNELS: dict[tuple[str, int], ReducerKernel] = {}


def kernel_for_modulus(q: int, backend: str | None = None) -> ReducerKernel:
    """Process-level cached scalar kernel for one modulus.

    NTT contexts and ad-hoc callers share instances so per-prime tables
    (``mu``, ``-q^-1 mod R``, ``R^2 mod q``) are computed once.
    """
    name = backend or default_backend_name()
    key = (name, q)
    kernel = _SCALAR_KERNELS.get(key)
    if kernel is None:
        kernel = make_kernel(q, name)
        _SCALAR_KERNELS[key] = kernel
    return kernel
