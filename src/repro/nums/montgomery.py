"""Montgomery modular reduction — vanilla and the paper's NTT-friendly form.

Vanilla Montgomery (Eq. 4–7) needs three multipliers: the operand product
``T = a*b``, the ``m = T * QInv mod R`` product, and the ``m * Q`` product.
Section IV-A observes that for NTT-friendly primes

    Q = 2^bw + k * 2^(n+1) + 1,   k = ±2^a ± 2^b ± 2^c          (Eq. 8)

both ``QInv`` products collapse into shift-and-add networks, leaving a
single real multiplier (Table I: 11328 µm² vs 19255 for vanilla Montgomery,
a 41.2 % reduction).

The shift-add derivation used here: modulo ``R = 2^r`` (r = bit width of Q),
``Q ≡ 1 + k*2^(n+1)``, so by the 2-adic geometric series

    Q^{-1} ≡ sum_{i>=0} (-k * 2^(n+1))^i   (mod 2^r)

which terminates after ``ceil(r / (n+1))`` terms. Every term is a product of
powers of the sparse ``k``, hence a few shifted adds of T. Likewise
``m * Q = (m << bw) + (m*k) << (n+1) + m`` is shift-add. This is the same
hardware consequence as the paper's Euler-theorem route (Eq. 9–11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nums.primegen import NttFriendlyPrime

__all__ = ["MontgomeryReducer", "NttFriendlyMontgomeryReducer"]


@dataclass(frozen=True)
class MontgomeryReducer:
    """Classic word-size Montgomery (REDC) reducer.

    Attributes:
        q: odd modulus.
        r_bits: R = 2^r_bits with R > q.
        q_neg_inv: ``-q^{-1} mod R`` used by REDC.
        r2: ``R^2 mod q`` for conversion into the Montgomery domain.
    """

    q: int
    r_bits: int
    q_neg_inv: int
    r2: int

    NUM_MULTIPLIERS = 3
    PIPELINE_STAGES = 3

    @classmethod
    def for_modulus(cls, q: int) -> "MontgomeryReducer":
        if q < 3 or q % 2 == 0:
            raise ValueError(f"Montgomery needs an odd modulus >= 3, got {q}")
        r_bits = q.bit_length()
        r = 1 << r_bits
        q_neg_inv = (-pow(q, -1, r)) % r
        return cls(q=q, r_bits=r_bits, q_neg_inv=q_neg_inv, r2=(r * r) % q)

    @property
    def r(self) -> int:
        return 1 << self.r_bits

    def reduce(self, t: int) -> int:
        """REDC: return ``t * R^{-1} mod q`` for ``0 <= t < q * R``."""
        if t < 0 or t >= self.q << self.r_bits:
            raise ValueError(f"REDC input must be in [0, q*R); got {t}")
        mask = self.r - 1
        m = ((t & mask) * self.q_neg_inv) & mask
        u = (t + m * self.q) >> self.r_bits
        return u - self.q if u >= self.q else u

    def to_montgomery(self, a: int) -> int:
        """Map a residue into the Montgomery domain (a * R mod q)."""
        return self.reduce((a % self.q) * self.r2)

    def from_montgomery(self, a_mont: int) -> int:
        """Map back out of the Montgomery domain."""
        return self.reduce(a_mont)

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Product of two Montgomery-domain residues, still in the domain."""
        return self.reduce(a_mont * b_mont)

    def mul_plain(self, a: int, b: int) -> int:
        """Modular product of two ordinary residues (convenience oracle)."""
        return self.from_montgomery(self.mul(self.to_montgomery(a), self.to_montgomery(b)))


@dataclass(frozen=True)
class NttFriendlyMontgomeryReducer:
    """Montgomery reducer whose QInv/Q products are shift-add networks.

    Built from an :class:`NttFriendlyPrime` so the sparse structure of ``k``
    is available. ``reduce`` computes bit-identical results to
    :class:`MontgomeryReducer` while *counting* only shift/add work beyond
    the initial operand product — the accounting consumed by the Table I
    area model.
    """

    prime: NttFriendlyPrime
    r_bits: int
    # (coefficient, shift) pairs such that QInv = sum(coeff << shift) mod R,
    # where every coefficient is itself sparse in signed powers of two.
    qinv_terms: tuple[int, ...] = field(default=())

    NUM_MULTIPLIERS = 1
    PIPELINE_STAGES = 3

    @classmethod
    def for_prime(cls, prime: NttFriendlyPrime) -> "NttFriendlyMontgomeryReducer":
        q = prime.value
        r_bits = q.bit_length()
        r = 1 << r_bits
        # 2-adic geometric series for Q^{-1} mod 2^r, seeded with the full
        # D = Q - 1 = 2^bw + k*2^(n+1): when R = 2^(bw+1) (primes just above
        # 2^bw) the 2^bw term does not vanish mod R, so it must be kept.  D
        # stays sparse in signed powers of two, so terms remain shift-add.
        step = prime.value - 1
        qinv = 0
        term = 1
        terms: list[int] = []
        while term % r != 0:
            terms.append(term % r)
            qinv = (qinv + term) % r
            term = (-term * step) % r  # next series term (kept reduced)
            if len(terms) > r_bits:  # defensive: series must terminate
                raise ArithmeticError("QInv series failed to terminate")
        expected = pow(q, -1, r)
        if qinv != expected:
            raise ArithmeticError(
                f"shift-add QInv derivation mismatch for q={q}: {qinv} != {expected}"
            )
        return cls(prime=prime, r_bits=r_bits, qinv_terms=tuple(terms))

    @property
    def q(self) -> int:
        return self.prime.value

    @property
    def r(self) -> int:
        return 1 << self.r_bits

    @property
    def num_series_terms(self) -> int:
        """Shift-add series length — ceil(r / (n+1)) terms for these primes."""
        return len(self.qinv_terms)

    @property
    def shift_add_cost(self) -> int:
        """Total adders in the QInv and Q shift-add networks.

        Each series term beyond the first contributes the sparse-k adds
        (len(k_terms) per multiplication by k); the final ``m*Q`` network
        adds len(k_terms) + 2 more (the 2^bw and +1 terms of Eq. 8).
        """
        k_adds = max(1, len(self.prime.k_terms))
        qinv_adds = (self.num_series_terms - 1) * k_adds
        mq_adds = k_adds + 2
        return qinv_adds + mq_adds

    def _mul_qinv_mod_r(self, t_low: int) -> int:
        """``t_low * QInv mod R`` via shifted adds of the series terms.

        Each series term is ±(k^i) << (i*(n+1)); multiplying by sparse k is
        a handful of shifted adds, so no general multiplier is used — the
        Python expression below mirrors the adder tree, not a multiplier.
        """
        mask = self.r - 1
        acc = 0
        for term in self.qinv_terms:
            acc = (acc + t_low * term) & mask
        return acc

    def _mul_q(self, m: int) -> int:
        """``m * Q`` via Eq. 8 structure: (m<<bw) + (m*k)<<(n+1) + m."""
        p = self.prime
        mk = 0
        for sign, exp in p.k_terms:
            mk += sign * (m << exp)
        return (m << p.bitwidth) + (mk << (p.n_exp + 1)) + m

    def reduce(self, t: int) -> int:
        """REDC ``t -> t * R^{-1} mod q`` using only shift-add side products.

        Follows the paper's Eq. 5–7 form (``QInv = +Q^{-1} mod R``,
        ``t = (T - m*Q) / R`` with a conditional +Q fix-up).
        """
        if t < 0 or t >= self.q << self.r_bits:
            raise ValueError(f"REDC input must be in [0, q*R); got {t}")
        mask = self.r - 1
        m = self._mul_qinv_mod_r(t & mask)
        u = (t - self._mul_q(m)) >> self.r_bits  # exact: T ≡ m*Q (mod R)
        if u < 0:
            u += self.q  # Eq. 7
        while u >= self.q:
            u -= self.q
        return u

    def to_montgomery(self, a: int) -> int:
        return (a % self.q) * self.r % self.q

    def from_montgomery(self, a_mont: int) -> int:
        return self.reduce(a_mont)

    def mul(self, a_mont: int, b_mont: int) -> int:
        return self.reduce(a_mont * b_mont)

    def mul_plain(self, a: int, b: int) -> int:
        return self.from_montgomery(self.mul(self.to_montgomery(a), self.to_montgomery(b)))
