"""Chinese Remainder Theorem combine / RNS decomposition.

The accelerator's MSE performs "RNS" (decompose a big integer coefficient
into residues) on the encode path and "Combine CRT" on the decode path
(Fig. 2a).  This module is the exact-arithmetic reference for both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nums.modular import centered, mod_inv

__all__ = ["CrtSystem"]


@dataclass(frozen=True)
class CrtSystem:
    """Precomputed CRT data for a set of pairwise-coprime moduli.

    Attributes:
        moduli: the RNS primes ``q_0 … q_{L-1}``.
        modulus: the full product ``Q = prod(q_i)``.
        q_hat: ``Q / q_i`` for each limb.
        q_hat_inv: ``(Q / q_i)^{-1} mod q_i`` for each limb.
    """

    moduli: tuple[int, ...]
    modulus: int
    q_hat: tuple[int, ...]
    q_hat_inv: tuple[int, ...]

    @classmethod
    def for_moduli(cls, moduli: tuple[int, ...] | list[int]) -> "CrtSystem":
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise ValueError("CRT needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise ValueError("CRT moduli must be distinct")
        big_q = 1
        for q in moduli:
            big_q *= q
        q_hat = tuple(big_q // q for q in moduli)
        q_hat_inv = tuple(mod_inv(h % q, q) for h, q in zip(q_hat, moduli))
        return cls(moduli=moduli, modulus=big_q, q_hat=q_hat, q_hat_inv=q_hat_inv)

    def decompose(self, value: int) -> tuple[int, ...]:
        """Big integer -> residue vector (the MSE "Expand RNS" step)."""
        return tuple(value % q for q in self.moduli)

    def combine(self, residues: tuple[int, ...] | list[int]) -> int:
        """Residue vector -> unique representative in [0, Q)."""
        if len(residues) != len(self.moduli):
            raise ValueError(
                f"expected {len(self.moduli)} residues, got {len(residues)}"
            )
        acc = 0
        for r, q, hat, hat_inv in zip(residues, self.moduli, self.q_hat, self.q_hat_inv):
            acc += ((int(r) % q) * hat_inv % q) * hat
        return acc % self.modulus

    def combine_centered(self, residues: tuple[int, ...] | list[int]) -> int:
        """Residue vector -> centered representative in (-Q/2, Q/2]."""
        return centered(self.combine(residues), self.modulus)

    # ------------------------------------------------------------------
    # Array versions used by the RNS polynomial layer
    # ------------------------------------------------------------------

    def decompose_array(self, values: list[int] | np.ndarray) -> list[np.ndarray]:
        """Vector of big ints -> one uint64 residue array per limb."""
        out: list[np.ndarray] = []
        for q in self.moduli:
            out.append(np.array([int(v) % q for v in values], dtype=np.uint64))
        return out

    def combine_array(self, limbs: list[np.ndarray], center: bool = True) -> list[int]:
        """Per-limb residue arrays -> list of (optionally centered) big ints."""
        if len(limbs) != len(self.moduli):
            raise ValueError(f"expected {len(self.moduli)} limbs, got {len(limbs)}")
        n = len(limbs[0])
        combine = self.combine_centered if center else self.combine
        return [combine([int(limb[i]) for limb in limbs]) for i in range(n)]
