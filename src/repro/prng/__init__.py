"""On-chip PRNG model: 128-bit-seed XOF plus lattice samplers.

Models the accelerator's PRNG unit (Fig. 3a) — masks, errors, keys and
seed-shared public polynomials are all expanded from a 128-bit seed rather
than fetched from DRAM (Section IV-B).
"""

from repro.prng.samplers import (
    ERROR_STDDEV,
    DiscreteGaussianSampler,
    TernarySampler,
    UniformSampler,
)
from repro.prng.xof import SEED_BYTES, Xof

__all__ = [
    "ERROR_STDDEV",
    "DiscreteGaussianSampler",
    "SEED_BYTES",
    "TernarySampler",
    "UniformSampler",
    "Xof",
]
