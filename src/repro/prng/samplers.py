"""Lattice samplers driven by the on-chip PRNG model.

Three distributions cover all CKKS client-side randomness:

* **uniform mod q** — the public polynomial ``a`` of the public key and
  the ``c1`` seed-shared ciphertext component;
* **ternary** — secret keys and encryption masks ``v`` with coefficients
  in {-1, 0, 1} (sparse or dense);
* **centered discrete Gaussian** (σ = 3.2, the homomorphic-encryption
  standard the paper's 128-bit parameter sets follow) — error polynomials
  ``e0, e1``, sampled by inverse-CDF over a precomputed table, which is
  also how compact hardware samplers are built.

All samplers are deterministic functions of ``(Xof, domain, counter)`` so
tests can replay exact streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.prng.xof import Xof

__all__ = ["UniformSampler", "TernarySampler", "DiscreteGaussianSampler", "ERROR_STDDEV"]

ERROR_STDDEV = 3.2
"""Standard deviation of the CKKS error distribution (HE-standard choice)."""


@dataclass(frozen=True)
class UniformSampler:
    """Uniform residues in [0, q) by rejection from 64-bit words.

    Rejection keeps the output exactly uniform: a 64-bit word is accepted
    when it falls below the largest multiple of q representable in 64 bits.
    """

    modulus: int

    def sample(self, xof: Xof, domain: bytes, count: int, counter: int = 0) -> np.ndarray:
        q = self.modulus
        if q < 2 or q.bit_length() > 62:
            raise ValueError(f"modulus out of supported range: {q}")
        limit = (1 << 64) - ((1 << 64) % q)
        out = np.empty(count, dtype=np.uint64)
        filled = 0
        block = counter
        while filled < count:
            need = count - filled
            words = xof.uint64_stream(domain, max(need + need // 8 + 16, 32), block)
            accepted = words[words < np.uint64(limit)] % np.uint64(q)
            take = min(len(accepted), need)
            out[filled : filled + take] = accepted[:take]
            filled += take
            block += 1 << 32  # jump far so refill blocks never collide
        return out


@dataclass(frozen=True)
class TernarySampler:
    """Coefficients in {-1, 0, 1}, represented as residues mod q.

    ``hamming_weight`` selects the sparse variant (exactly h nonzeros,
    used for secret keys in bootstrappable parameter sets); without it,
    each coefficient is independently -1/0/1 with probability 1/4, 1/2,
    1/4 (two PRNG bits per coefficient, the dense-mask hardware layout).
    """

    modulus: int
    hamming_weight: int | None = None

    def sample_signed(self, xof: Xof, domain: bytes, count: int, counter: int = 0) -> np.ndarray:
        """Signed coefficients in {-1, 0, 1} as int64."""
        if self.hamming_weight is None:
            return self._dense(xof, domain, count, counter)
        return self._sparse(xof, domain, count, counter)

    def sample(self, xof: Xof, domain: bytes, count: int, counter: int = 0) -> np.ndarray:
        """Residues mod q (−1 mapped to q−1)."""
        signed = self.sample_signed(xof, domain, count, counter)
        q = np.uint64(self.modulus)
        return (signed.astype(np.int64) % np.int64(self.modulus)).astype(np.uint64) % q

    def _dense(self, xof: Xof, domain: bytes, count: int, counter: int) -> np.ndarray:
        words = xof.uint64_stream(domain, (count + 31) // 32, counter)
        bits = np.unpackbits(words.view(np.uint8))[: 2 * count]
        pairs = bits.reshape(count, 2)
        # 00 -> -1, 01/10 -> 0, 11 -> +1: mean 0, variance 1/2.
        return (pairs[:, 0].astype(np.int64) + pairs[:, 1].astype(np.int64)) - 1

    def _sparse(self, xof: Xof, domain: bytes, count: int, counter: int) -> np.ndarray:
        h = self.hamming_weight
        if h is None or h > count:
            raise ValueError(f"hamming weight {h} exceeds length {count}")
        out = np.zeros(count, dtype=np.int64)
        # Fisher–Yates-style selection of h positions from the XOF stream.
        chosen: list[int] = []
        taken = np.zeros(count, dtype=bool)
        word_idx = 0
        words = xof.uint64_stream(domain, 4 * h + 64, counter)
        for _ in range(h):
            while True:
                if word_idx >= len(words):
                    counter += 1 << 32
                    words = xof.uint64_stream(domain, 4 * h + 64, counter)
                    word_idx = 0
                pos = int(words[word_idx] % np.uint64(count))
                sign_bit = int(words[word_idx] >> np.uint64(63))
                word_idx += 1
                if not taken[pos]:
                    taken[pos] = True
                    chosen.append(pos)
                    out[pos] = 1 if sign_bit else -1
                    break
        return out


@dataclass(frozen=True)
class DiscreteGaussianSampler:
    """Centered discrete Gaussian over Z via inverse-CDF table lookup.

    The cumulative table covers ±6σ (tail mass < 2^-55, the paper-level
    security regime); each sample consumes one 64-bit PRNG word.
    """

    stddev: float = ERROR_STDDEV
    _table: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.stddev <= 0:
            raise ValueError("stddev must be positive")
        tail = int(math.ceil(6 * self.stddev))
        support = np.arange(-tail, tail + 1)
        weights = np.exp(-(support.astype(float) ** 2) / (2 * self.stddev**2))
        cdf = np.cumsum(weights / weights.sum())
        object.__setattr__(self, "_table", (support, cdf))

    def sample_signed(self, xof: Xof, domain: bytes, count: int, counter: int = 0) -> np.ndarray:
        """Signed integer errors (int64)."""
        support, cdf = self._table
        words = xof.uint64_stream(domain, count, counter)
        u = (words >> np.uint64(11)).astype(np.float64) * (2.0**-53)
        idx = np.searchsorted(cdf, u, side="left")
        return support[np.minimum(idx, len(support) - 1)].astype(np.int64)

    def sample(self, xof: Xof, domain: bytes, count: int, modulus: int, counter: int = 0) -> np.ndarray:
        """Errors as residues mod q."""
        signed = self.sample_signed(xof, domain, count, counter)
        return (signed % np.int64(modulus)).astype(np.uint64)
