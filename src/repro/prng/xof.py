"""128-bit-seeded extendable-output PRNG (the on-chip PRNG of Fig. 3a).

ABC-FHE keeps only a 128-bit seed on-chip and expands every random object —
encryption masks, error polynomials, key material, and the seed-shared
public-key "a" component — through a PRNG, eliminating 8.25 MB of
mask/error traffic and (with seed-shared keys) most of the 16.5 MB public
key (Section IV-B).

We model the XOF with SHAKE-128, which matches the 128-bit security target
and, like the hardware unit, supports *domain separation*: every consumer
derives an independent stream from (seed, domain, counter), so encrypting
two messages or sampling two error polynomials never reuses randomness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = ["Xof", "SEED_BYTES"]

SEED_BYTES = 16  # 128-bit seed, matching the paper's security accounting


@dataclass(frozen=True)
class Xof:
    """Deterministic extendable-output function keyed by a 128-bit seed.

    Attributes:
        seed: exactly 16 bytes of key material.
    """

    seed: bytes

    def __post_init__(self) -> None:
        if len(self.seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(self.seed)}")

    @classmethod
    def from_int(cls, value: int) -> "Xof":
        """Convenience constructor for tests and examples."""
        return cls(value.to_bytes(SEED_BYTES, "little", signed=False))

    def stream(self, domain: bytes, nbytes: int, counter: int = 0) -> bytes:
        """Expand ``nbytes`` of output for a (domain, counter) pair.

        Separate (domain, counter) pairs yield computationally independent
        streams; the same pair always yields the same bytes — the property
        that lets client and server re-derive seed-shared polynomials.
        """
        shake = hashlib.shake_128()
        shake.update(self.seed)
        shake.update(len(domain).to_bytes(2, "little"))
        shake.update(domain)
        shake.update(counter.to_bytes(8, "little"))
        return shake.digest(nbytes)

    def uint64_stream(self, domain: bytes, count: int, counter: int = 0) -> np.ndarray:
        """``count`` uniform 64-bit words as a numpy array."""
        raw = self.stream(domain, 8 * count, counter)
        return np.frombuffer(raw, dtype=np.uint64).copy()

    def derive(self, label: bytes) -> "Xof":
        """Child XOF with an independent 128-bit seed (key hierarchy)."""
        return Xof(self.stream(b"derive:" + label, SEED_BYTES))
