"""CKKS parameter sets, including the paper's bootstrappable configuration.

The evaluation setup of Section V-B: polynomial degree 2^16, 36-bit primes
following the double-scale technique [1] (so the encoding scale is a ~72-bit
quantity spread over *two* rescalings), and 24 levels (doubled from the
standard 12).  Client messages are encrypted to 24-level ciphertexts;
server responses arrive at 2 levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prng.samplers import ERROR_STDDEV
from repro.transforms.fp_custom import FP64, FloatFormat
from repro.utils.bitops import ilog2

__all__ = ["CkksParameters", "bootstrappable_params", "toy_params"]


@dataclass(frozen=True)
class CkksParameters:
    """Static CKKS configuration.

    Attributes:
        degree: ring degree N (power of two); N/2 complex slots.
        num_primes: RNS chain length L (the maximum level).
        prime_bits: nominal bitwidth of each RNS prime (36 in the paper).
        scale_bits: log2 of the encoding scale Δ.  With the double-scale
            technique Δ ≈ two primes' product, so ``scale_bits ≈
            2 * prime_bits`` and one multiplication consumes two levels.
        error_stddev: Gaussian error σ (3.2 per the HE standard).
        secret_hamming_weight: nonzeros in the ternary secret; None for a
            dense ternary secret.
        fp_format: floating-point datapath for the encoder FFT (FP64
            reference or the accelerator's FP55).
        encrypt_level: level fresh ciphertexts are encrypted at.
        decrypt_level: level at which server responses arrive (2 in the
            paper's evaluation, "to minimize computational overhead on
            the client").
    """

    degree: int
    num_primes: int
    prime_bits: int = 36
    scale_bits: int = 72
    error_stddev: float = ERROR_STDDEV
    secret_hamming_weight: int | None = None
    fp_format: FloatFormat = field(default=FP64)
    encrypt_level: int | None = None
    decrypt_level: int = 2

    def __post_init__(self) -> None:
        ilog2(self.degree)
        if self.num_primes < 1:
            raise ValueError("need at least one prime")
        if self.decrypt_level > self.num_primes:
            raise ValueError("decrypt level exceeds chain length")
        if self.encrypt_level is not None and not (
            1 <= self.encrypt_level <= self.num_primes
        ):
            raise ValueError("encrypt level outside [1, num_primes]")

    @property
    def slots(self) -> int:
        """Number of complex message slots (N/2)."""
        return self.degree // 2

    @property
    def scale(self) -> float:
        """The encoding scale Δ."""
        return float(2.0**self.scale_bits)

    @property
    def top_level(self) -> int:
        """Level of a fresh ciphertext."""
        return self.encrypt_level if self.encrypt_level is not None else self.num_primes

    @property
    def levels_per_multiplication(self) -> int:
        """Rescalings per homomorphic multiply (2 under double-scale)."""
        return max(1, round(self.scale_bits / self.prime_bits))


def bootstrappable_params(
    degree: int = 1 << 16, fp_format: FloatFormat = FP64
) -> CkksParameters:
    """The paper's evaluation configuration (Section V-B).

    N = 2^16, 36-bit primes, 24 levels (doubled from 12 by the double-scale
    technique), encrypt at 24 levels, decrypt at 2.
    """
    return CkksParameters(
        degree=degree,
        num_primes=24,
        prime_bits=36,
        scale_bits=72,
        fp_format=fp_format,
        decrypt_level=2,
    )


def toy_params(
    degree: int = 256,
    num_primes: int = 6,
    fp_format: FloatFormat = FP64,
    scale_bits: int = 72,
) -> CkksParameters:
    """Small parameters for unit tests and quick examples.

    Same 36-bit/double-scale structure as the paper's set, shrunk ring.
    Not secure — functional testing only.
    """
    return CkksParameters(
        degree=degree,
        num_primes=num_primes,
        prime_bits=36,
        scale_bits=scale_bits,
        fp_format=fp_format,
        decrypt_level=min(2, num_primes),
    )
