"""Chebyshev approximation and low-depth homomorphic polynomial evaluation.

Bootstrapping's EvalMod step approximates centered modular reduction with
a scaled sine, evaluated homomorphically.  Two pieces live here:

* :class:`ChebyshevSeries` — interpolate any function on an interval in
  the Chebyshev basis (numerically stable at high degree);
* :func:`evaluate_chebyshev` — evaluate a series on a ciphertext using
  the doubling recurrences ``T_{2k} = 2 T_k^2 - 1`` and
  ``T_{j+i} = 2 T_j T_i - T_{j-i}``, giving multiplicative depth
  ``O(log degree)`` instead of Horner's ``O(degree)`` — without this,
  EvalMod would not fit any level budget.

Scale management follows the standard exact-alignment discipline:
multiplying by small integer constants is free (encoded at scale 1), and
whenever two ciphertexts at drifting scales must be added, the
higher-level one is multiplied by ``1`` encoded at scale
``target * q_dropped / own`` and rescaled once, which lands on the target
scale *exactly* (up to a 2^-36 encoding rounding, far below the noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ckks.containers import Ciphertext
from repro.ckks.context import CkksContext
from repro.ckks.keys import SwitchingKey

__all__ = ["ChebyshevSeries", "evaluate_chebyshev", "sine_mod_series"]


@dataclass(frozen=True)
class ChebyshevSeries:
    """A truncated Chebyshev expansion of a function on [a, b].

    Attributes:
        coeffs: coefficients c_0 … c_d in the Chebyshev basis (of the
            affinely mapped argument).
        interval: the (a, b) domain of validity.
    """

    coeffs: tuple[float, ...]
    interval: tuple[float, float]

    @classmethod
    def interpolate(cls, func, interval: tuple[float, float], degree: int) -> "ChebyshevSeries":
        """Chebyshev interpolation at the degree+1 Chebyshev nodes."""
        a, b = interval
        if not a < b:
            raise ValueError("interval must satisfy a < b")
        n = degree + 1
        k = np.arange(n)
        nodes = np.cos(np.pi * (k + 0.5) / n)  # in [-1, 1]
        x = 0.5 * (b - a) * nodes + 0.5 * (b + a)
        y = np.array([func(v) for v in x], dtype=float)
        coeffs = np.zeros(n)
        for j in range(n):
            coeffs[j] = (2.0 / n) * np.sum(y * np.cos(np.pi * j * (k + 0.5) / n))
        coeffs[0] /= 2.0
        return cls(coeffs=tuple(float(c) for c in coeffs), interval=(float(a), float(b)))

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def __call__(self, x):
        """Clenshaw evaluation (the plain-data oracle for tests)."""
        a, b = self.interval
        t = (2.0 * np.asarray(x, dtype=float) - (a + b)) / (b - a)
        b1 = np.zeros_like(t)
        b2 = np.zeros_like(t)
        for c in reversed(self.coeffs[1:]):
            b1, b2 = 2.0 * t * b1 - b2 + c, b1
        result = t * b1 - b2 + self.coeffs[0]
        return result if result.shape else float(result)

    def max_error(self, func, samples: int = 512) -> float:
        """Worst-case approximation error over the interval."""
        a, b = self.interval
        xs = np.linspace(a, b, samples)
        return float(np.max(np.abs(self(xs) - np.array([func(v) for v in xs]))))


def sine_mod_series(modulus: float, wraps: int, degree: int) -> ChebyshevSeries:
    """The EvalMod approximation: centered ``x mod modulus`` via a sine.

    For ``|x| <= wraps * modulus + modulus/4`` and
    ``|x mod modulus| << modulus``, ``(modulus / 2π) sin(2π x / modulus)``
    agrees with the centered remainder up to a cubic error term — the
    classic CKKS bootstrapping trick.  ``wraps`` bounds the hidden
    overflow count I of the mod-raise.
    """
    half = wraps * modulus + modulus / 4

    def f(x: float) -> float:
        return modulus / (2 * math.pi) * math.sin(2 * math.pi * x / modulus)

    return ChebyshevSeries.interpolate(f, (-half, half), degree)


# ---------------------------------------------------------------------------
# Homomorphic evaluation
# ---------------------------------------------------------------------------


def _const_pt(ctx: CkksContext, value: float, level: int, scale: float):
    return ctx.encoder.encode(
        np.full(ctx.params.slots, value, dtype=np.complex128), level=level, scale=scale
    )


def _mul_integer(ctx: CkksContext, ct: Ciphertext, k: int) -> Ciphertext:
    """Multiply by a small integer exactly: scale-1 plaintext, no level."""
    pt = _const_pt(ctx, float(k), ct.level, 1.0)
    return ctx.evaluator.multiply_plain(ct, pt)


def _add_const(ctx: CkksContext, ct: Ciphertext, value: float) -> Ciphertext:
    return ctx.evaluator.add_plain(ct, _const_pt(ctx, value, ct.level, ct.scale))


def _align(ctx: CkksContext, ct: Ciphertext, level: int, scale: float) -> Ciphertext:
    """Bring ``ct`` to exactly (level, scale), spending one of its spare
    levels on an exact scale-correcting multiplication when needed."""
    if ct.level < level:
        raise ValueError(f"cannot raise level {ct.level} -> {level}")
    if math.isclose(ct.scale, scale, rel_tol=1e-12):
        if ct.level == level:
            return ct.copy()
        return Ciphertext([p.drop_limbs(level) for p in ct.parts], ct.scale)
    if ct.level == level:
        raise ValueError("scale correction needs one spare level")
    work = Ciphertext([p.drop_limbs(level + 1) for p in ct.parts], ct.scale)
    q_drop = ctx.basis.moduli[level]
    correction = scale * q_drop / work.scale
    pt = _const_pt(ctx, 1.0, level + 1, correction)
    out = ctx.evaluator.multiply_plain(work, pt)
    out = ctx.evaluator.rescale(out, times=1)
    # Exact by construction: scale * q_drop / q_drop == scale.
    out.scale = scale
    return out


def _chebyshev_basis(
    ctx: CkksContext,
    t: Ciphertext,
    indices: set[int],
    relin_keys: dict[int, SwitchingKey],
) -> dict[int, Ciphertext]:
    """Ciphertexts of T_k(t) for every requested index (plus dependencies).

    ``t`` must encrypt values in [-1, 1].  Depth of T_k is ceil(log2 k)
    multiplicative rungs.
    """
    basis: dict[int, Ciphertext] = {1: t}

    def build(k: int) -> Ciphertext:
        if k in basis:
            return basis[k]
        if k == 0:
            raise ValueError("T_0 is the constant 1; handled by the caller")
        hi, lo = (k + 1) // 2, k // 2
        t_hi, t_lo = build(hi), build(lo)
        lvl = min(t_hi.level, t_lo.level)
        a = _align(ctx, t_hi, lvl, t_hi.scale)
        b = _align(ctx, t_lo, lvl, t_lo.scale) if t_lo is not t_hi else a
        prod = ctx.evaluator.multiply_relin_rescale(a, b, relin_keys)
        doubled = _mul_integer(ctx, prod, 2)
        if hi == lo:
            out = _add_const(ctx, doubled, -1.0)  # T_{2h} = 2 T_h^2 - 1
        else:
            t_diff = build(hi - lo)  # = T_1 here since hi - lo in {0, 1}
            aligned = _align(ctx, t_diff, doubled.level, doubled.scale)
            out = ctx.evaluator.sub(doubled, aligned)
        basis[k] = out
        return out

    for k in sorted(indices):
        if k >= 1:
            build(k)
    return basis


def evaluate_chebyshev(
    ctx: CkksContext,
    series: ChebyshevSeries,
    ct: Ciphertext,
    relin_keys: dict[int, SwitchingKey],
    coeff_tolerance: float = 1e-12,
) -> Ciphertext:
    """Evaluate a Chebyshev series on a ciphertext.

    The input's slot values must lie inside ``series.interval``.  Depth:
    1 (affine map) + ceil(log2 degree) (basis) + 1 (combination) rungs,
    each rung costing ``levels_per_multiplication`` limbs.
    """
    ev = ctx.evaluator
    a, b = series.interval
    d = series.degree
    if d < 1:
        raise ValueError("series must have degree >= 1")

    # Affine map onto [-1, 1]: t = x * 2/(b-a) - (a+b)/(b-a).  The slope
    # plaintext's scale is chosen so the product rescales to exactly the
    # parameter scale Δ, normalizing whatever scale the input arrived at
    # (bootstrapping feeds ciphertexts at the small input scale Δ_in).
    lvl0 = ct.level
    rung = ctx.params.levels_per_multiplication
    dropped = 1.0
    for i in range(rung):
        dropped *= ctx.basis.moduli[lvl0 - 1 - i]
    slope_scale = ctx.params.scale * dropped / ct.scale
    slope_pt = _const_pt(ctx, 2.0 / (b - a), lvl0, slope_scale)
    t = ev.rescale(ev.multiply_plain(ct, slope_pt), times=rung)
    t.scale = ctx.params.scale  # exact by construction of slope_scale
    t = _add_const(ctx, t, -(a + b) / (b - a))

    wanted = {
        k for k, c in enumerate(series.coeffs) if k >= 1 and abs(c) > coeff_tolerance
    }
    if not wanted:
        raise ValueError("series has no non-constant terms above tolerance")
    basis = _chebyshev_basis(ctx, t, wanted, relin_keys)

    # Linear combination at the deepest basis level, all products landing
    # on one exact target scale.
    lvl = min(basis[k].level for k in wanted)
    target = ctx.params.scale * ctx.basis.moduli[lvl - 1] * ctx.basis.moduli[lvl - 2]
    acc: Ciphertext | None = None
    for k in sorted(wanted):
        term_in = _align(ctx, basis[k], lvl, basis[k].scale)
        coeff_pt = _const_pt(ctx, series.coeffs[k], lvl, target / term_in.scale)
        term = ev.multiply_plain(term_in, coeff_pt)
        term.scale = target  # exact: scale * (target / scale)
        acc = term if acc is None else ev.add(acc, term)
    assert acc is not None
    if abs(series.coeffs[0]) > coeff_tolerance:
        acc = ev.add_plain(acc, _const_pt(ctx, series.coeffs[0], lvl, target))
    out = ev.rescale(acc, times=2)
    return out
