"""Plaintext and ciphertext containers with scale/level bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.rns.poly import EVAL, RnsPolynomial

__all__ = ["Plaintext", "Ciphertext"]


@dataclass
class Plaintext:
    """An encoded message: one RNS polynomial plus its scale.

    Attributes:
        poly: the encoded polynomial (coefficient domain by convention).
        scale: the Δ this plaintext was scaled by at encoding.
    """

    poly: RnsPolynomial
    scale: float

    @property
    def level(self) -> int:
        return self.poly.level


@dataclass
class Ciphertext:
    """A CKKS ciphertext: tuple of polynomials under one (level, scale).

    Fresh ciphertexts have two parts (c0, c1); a tensor product before
    relinearization has three.  All parts are kept in the NTT (evaluation)
    domain, matching how the accelerator streams them.
    """

    parts: list[RnsPolynomial]
    scale: float

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("ciphertext needs at least c0 and c1")
        lvl = self.parts[0].level
        for p in self.parts:
            if p.level != lvl:
                raise ValueError("ciphertext parts at inconsistent levels")
            if p.domain != EVAL:
                raise ValueError("ciphertext parts must be in the NTT domain")

    @property
    def level(self) -> int:
        return self.parts[0].level

    @property
    def size(self) -> int:
        """Number of polynomial parts (2 normally, 3 pre-relinearization)."""
        return len(self.parts)

    @property
    def c0(self) -> RnsPolynomial:
        return self.parts[0]

    @property
    def c1(self) -> RnsPolynomial:
        return self.parts[1]

    def copy(self) -> "Ciphertext":
        return Ciphertext([p.copy() for p in self.parts], self.scale)
