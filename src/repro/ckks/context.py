"""One-stop CKKS context: parameters + basis + encoder + keys + engines.

``CkksContext.create`` is the public entry point most users want::

    from repro.ckks import CkksContext, toy_params

    ctx = CkksContext.create(toy_params(), seed=2024)
    ct = ctx.encrypt([1.5, 2.5 - 1j])
    print(ctx.decrypt_decode(ct)[:2])
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator, PublicKey, SecretKey, SwitchingKey
from repro.ckks.params import CkksParameters
from repro.prng.xof import Xof
from repro.rns.basis import RnsBasis

__all__ = ["CkksContext"]


@dataclass
class CkksContext:
    """Bound parameter set with generated keys and ready-made engines.

    Attributes:
        params: the CKKS configuration.
        basis: RNS chain generated for it.
        encoder: message <-> plaintext codec.
        encryptor / decryptor / evaluator: the three engines.
        secret_key / public_key: generated key material.
    """

    params: CkksParameters
    basis: RnsBasis
    encoder: CkksEncoder
    keygen: KeyGenerator
    secret_key: SecretKey
    public_key: PublicKey
    encryptor: Encryptor
    decryptor: Decryptor
    evaluator: Evaluator

    @classmethod
    def create(cls, params: CkksParameters, seed: int = 0) -> "CkksContext":
        """Generate a full context (basis, keys, engines) from a seed."""
        basis = RnsBasis.create(params.degree, params.num_primes, params.prime_bits)
        master = Xof.from_int(seed)
        keygen = KeyGenerator(params=params, basis=basis, xof=master.derive(b"keygen"))
        sk = keygen.gen_secret()
        pk = keygen.gen_public(sk)
        return cls(
            params=params,
            basis=basis,
            encoder=CkksEncoder.create(params, basis),
            keygen=keygen,
            secret_key=sk,
            public_key=pk,
            encryptor=Encryptor(
                params=params, basis=basis, public_key=pk, xof=master.derive(b"enc")
            ),
            decryptor=Decryptor(params=params, secret_key=sk),
            evaluator=Evaluator(params=params, basis=basis),
        )

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------

    def encode(self, values, level: int | None = None) -> Plaintext:
        return self.encoder.encode(np.asarray(values), level=level)

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        return self.encoder.decode(plaintext)

    def encrypt(self, values, level: int | None = None) -> Ciphertext:
        """Encode + encrypt in one step (the paper's encode+encrypt task)."""
        return self.encryptor.encrypt(self.encode(values, level=level))

    def decrypt_decode(self, ciphertext: Ciphertext) -> np.ndarray:
        """Decrypt + decode in one step (the decode+decrypt task)."""
        return self.decode(self.decryptor.decrypt(ciphertext))

    def relin_keys(self, levels: list[int] | None = None) -> dict[int, SwitchingKey]:
        """Generate relinearization keys for the given levels."""
        if levels is None:
            levels = list(range(2, self.params.num_primes + 1))
        return self.keygen.gen_relin(self.secret_key, levels)

    def galois_keys(
        self, rotations: list[int], levels: list[int] | None = None
    ) -> dict[tuple[int, int], SwitchingKey]:
        """Generate Galois keys for the given rotations and levels."""
        if levels is None:
            levels = list(range(2, self.params.num_primes + 1))
        return self.keygen.gen_galois(self.secret_key, rotations, levels)
