"""Homomorphic linear transforms: slot-space matrix-vector products.

Bootstrapping's CoeffToSlot/SlotToCoeff steps — and most CKKS
applications (convolutions, dense layers) — are linear maps on the slot
vector.  A dense map decomposes into rotated diagonals::

    (M x)_j = sum_i  diag_i(M)_j * x_{j+i}

so ``M x = sum_i diag_i(M) ⊙ rot_i(x)``.  :class:`HomomorphicLinearTransform`
evaluates this with the baby-step/giant-step grouping (``~2 sqrt(n)``
rotations instead of ``n``), pre-rotating giant-block diagonals so the
inner sums share one rotation each.

The baby-step rotations are *hoisted*: the input ciphertext is
gadget-decomposed once (:meth:`repro.ckks.evaluator.Evaluator.decompose`)
and every rotation reuses that decomposition — the classic hoisting
optimization that turns the dominant per-rotation digit expansion into a
one-time cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.keys import SwitchingKey

__all__ = ["HomomorphicLinearTransform"]


@dataclass
class HomomorphicLinearTransform:
    """A slot-space matrix fixed at construction, evaluatable on
    ciphertexts at one level.

    Attributes:
        ctx: the CKKS context.
        matrix: dense (slots x slots) complex matrix.
        level: ciphertext level this transform is compiled for.
        baby_steps: BSGS group size (default ~sqrt(slots)).
    """

    ctx: CkksContext
    matrix: np.ndarray
    level: int
    baby_steps: int = 0
    _diagonals: dict[tuple[int, int], Plaintext] = field(init=False, repr=False)
    _nonzero: list[tuple[int, int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.ctx.params.slots
        self.matrix = np.asarray(self.matrix, dtype=np.complex128)
        if self.matrix.shape != (n, n):
            raise ValueError(f"matrix must be ({n}, {n}); got {self.matrix.shape}")
        if self.baby_steps <= 0:
            self.baby_steps = max(1, 1 << (int(math.isqrt(n)).bit_length() - 1))
        self._compile()

    def _diag(self, i: int) -> np.ndarray:
        """The i-th generalized diagonal: d_j = M[j, (j + i) mod n]."""
        n = self.ctx.params.slots
        j = np.arange(n)
        return self.matrix[j, (j + i) % n]

    def _compile(self) -> None:
        """Encode every nonzero diagonal, pre-rotated by its giant step."""
        n = self.ctx.params.slots
        bs = self.baby_steps
        self._diagonals = {}
        self._nonzero = []
        scale = self.ctx.params.scale
        for i in range(n):
            d = self._diag(i)
            if np.max(np.abs(d)) < 1e-15:
                continue
            g, j = divmod(i, bs)
            # Pre-rotate by -g*bs so the inner sum needs only rot_j(x).
            pre = np.roll(d, g * bs)
            encoded = self.ctx.encoder.encode(pre, level=self.level, scale=scale)
            # Cache in the NTT domain: apply() multiplies each diagonal
            # every call, so the forward transform is paid once here.
            self._diagonals[(g, j)] = Plaintext(
                poly=encoded.poly.to_eval(), scale=encoded.scale
            )
            self._nonzero.append((g, j))

    def required_rotations(self) -> list[int]:
        """Slot rotations the evaluation needs keys for (at ``level``)."""
        baby = sorted({j for _, j in self._nonzero if j != 0})
        giants = sorted({g * self.baby_steps for g, _ in self._nonzero if g != 0})
        return baby + giants

    def apply(
        self,
        ct: Ciphertext,
        galois_keys: dict[tuple[int, int], SwitchingKey],
    ) -> Ciphertext:
        """Evaluate M·x on a ciphertext at the compiled level.

        Output scale is ``ct.scale * Delta`` (caller rescales when ready —
        CoeffToSlot sums several transforms before a single rescale).
        """
        if ct.level != self.level:
            raise ValueError(f"transform compiled for level {self.level}, got {ct.level}")
        ev = self.ctx.evaluator
        bs = self.baby_steps

        # Hoisted baby steps: decompose ct once, then every rotation is a
        # slot permutation plus one key contraction — the inner loop pays
        # a single digit expansion instead of one per rotation.
        rotated: dict[int, Ciphertext] = {0: ct}
        baby = sorted({j for _, j in self._nonzero if j != 0})
        if baby:
            hoisted = ev.decompose(ct)
            for j in baby:
                rotated[j] = ev.rotate(ct, j, galois_keys, decomposed=hoisted)

        by_giant: dict[int, list[int]] = {}
        for g, j in self._nonzero:
            by_giant.setdefault(g, []).append(j)

        acc: Ciphertext | None = None
        for g, js in sorted(by_giant.items()):
            inner: Ciphertext | None = None
            for j in js:
                term = ev.multiply_plain(rotated[j], self._diagonals[(g, j)])
                inner = term if inner is None else ev.add(inner, term)
            assert inner is not None
            if g != 0:
                inner = ev.rotate(inner, g * bs, galois_keys)
            acc = inner if acc is None else ev.add(acc, inner)
        assert acc is not None
        return acc
