"""Homomorphic linear transforms: slot-space matrix-vector products.

Bootstrapping's CoeffToSlot/SlotToCoeff steps — and most CKKS
applications (convolutions, dense layers) — are linear maps on the slot
vector.  A dense map decomposes into rotated diagonals::

    (M x)_j = sum_i  diag_i(M)_j * x_{j+i}

so ``M x = sum_i diag_i(M) ⊙ rot_i(x)``.  :class:`HomomorphicLinearTransform`
evaluates this with the baby-step/giant-step grouping (``~2 sqrt(n)``
rotations instead of ``n``), pre-rotating giant-block diagonals so the
inner sums share one rotation each.

Evaluation goes through the lazy runtime (:mod:`repro.runtime`): the BSGS
loop is *emitted* as plain rotate/multiply/add calls with no hand-coded
hoisting, traced into a computation graph, and compiled into a cached
:class:`~repro.runtime.plan.ExecutionPlan`.  The optimizer's hoisting pass
rediscovers that every baby-step rotation shares the input ciphertext and
collapses them onto one gadget decomposition
(:meth:`repro.ckks.evaluator.Evaluator.decompose`) — the classic hoisting
optimization that used to be hand-woven through this file — and the plan
replays across many inputs via :meth:`apply_batch`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.keys import SwitchingKey

__all__ = ["HomomorphicLinearTransform"]


@dataclass
class HomomorphicLinearTransform:
    """A slot-space matrix fixed at construction, evaluatable on
    ciphertexts at one level.

    Attributes:
        ctx: the CKKS context.
        matrix: dense (slots x slots) complex matrix.
        level: ciphertext level this transform is compiled for.
        baby_steps: BSGS group size (default ~sqrt(slots)).
    """

    ctx: CkksContext
    matrix: np.ndarray
    level: int
    baby_steps: int = 0
    _diagonals: dict[tuple[int, int], Plaintext] = field(init=False, repr=False)
    _nonzero: list[tuple[int, int]] = field(init=False, repr=False)
    _plans: dict[tuple[float, int], tuple] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        n = self.ctx.params.slots
        self.matrix = np.asarray(self.matrix, dtype=np.complex128)
        if self.matrix.shape != (n, n):
            raise ValueError(f"matrix must be ({n}, {n}); got {self.matrix.shape}")
        if self.baby_steps <= 0:
            self.baby_steps = max(1, 1 << (int(math.isqrt(n)).bit_length() - 1))
        self._compile()

    def _diag(self, i: int) -> np.ndarray:
        """The i-th generalized diagonal: d_j = M[j, (j + i) mod n]."""
        n = self.ctx.params.slots
        j = np.arange(n)
        return self.matrix[j, (j + i) % n]

    def _compile(self) -> None:
        """Encode every nonzero diagonal, pre-rotated by its giant step."""
        n = self.ctx.params.slots
        bs = self.baby_steps
        self._diagonals = {}
        self._nonzero = []
        scale = self.ctx.params.scale
        for i in range(n):
            d = self._diag(i)
            if np.max(np.abs(d)) < 1e-15:
                continue
            g, j = divmod(i, bs)
            # Pre-rotate by -g*bs so the inner sum needs only rot_j(x).
            pre = np.roll(d, g * bs)
            encoded = self.ctx.encoder.encode(pre, level=self.level, scale=scale)
            # Cache in the NTT domain: apply() multiplies each diagonal
            # every call, so the forward transform is paid once here.
            self._diagonals[(g, j)] = Plaintext(
                poly=encoded.poly.to_eval(), scale=encoded.scale
            )
            self._nonzero.append((g, j))

    def required_rotations(self) -> list[int]:
        """Slot rotations the evaluation needs keys for (at ``level``)."""
        baby = sorted({j for _, j in self._nonzero if j != 0})
        giants = sorted({g * self.baby_steps for g, _ in self._nonzero if g != 0})
        return baby + giants

    def emit(self, ev, ct, galois_keys):
        """Emit the BSGS loop against any evaluator surface.

        ``ev`` may be the eager :class:`~repro.ckks.evaluator.Evaluator`
        (one-shot, unoptimized dispatch — the benchmark baseline) or a
        :class:`~repro.runtime.trace.LazyEvaluator` recording a graph.
        Rotations are emitted *without* explicit hoisting; when traced,
        the runtime's hoisting pass regroups the baby steps onto one
        shared decomposition automatically.
        """
        bs = self.baby_steps
        rotated = {0: ct}
        for j in sorted({j for _, j in self._nonzero if j != 0}):
            rotated[j] = ev.rotate(ct, j, galois_keys)

        by_giant: dict[int, list[int]] = {}
        for g, j in self._nonzero:
            by_giant.setdefault(g, []).append(j)

        acc = None
        for g, js in sorted(by_giant.items()):
            inner = None
            for j in js:
                term = ev.multiply_plain(rotated[j], self._diagonals[(g, j)])
                inner = term if inner is None else ev.add(inner, term)
            assert inner is not None
            if g != 0:
                inner = ev.rotate(inner, g * bs, galois_keys)
            acc = inner if acc is None else ev.add(acc, inner)
        assert acc is not None
        return acc

    def plan_for(self, scale: float, galois_keys: dict[tuple[int, int], SwitchingKey]):
        """Trace + compile (once) the BSGS program for one input scale.

        The compiled :class:`~repro.runtime.plan.ExecutionPlan` is memoized
        per (scale, key-set) — and deduplicated process-wide by the plan
        cache — so serving traffic replays one optimized plan.
        """
        from repro.runtime import CtSpec, compile_fn

        memo_key = (scale, id(galois_keys))
        hit = self._plans.get(memo_key)
        # The memo pins the key dict so a recycled id can never alias a
        # different key set.
        if hit is not None and hit[0] is galois_keys:
            return hit[1]
        plan = compile_fn(
            lambda ev, h: self.emit(ev, h, galois_keys),
            self.ctx.evaluator,
            [CtSpec(level=self.level, scale=scale)],
        )
        self._plans[memo_key] = (galois_keys, plan)
        return plan

    def apply(
        self,
        ct: Ciphertext,
        galois_keys: dict[tuple[int, int], SwitchingKey],
    ) -> Ciphertext:
        """Evaluate M·x on a ciphertext at the compiled level.

        Output scale is ``ct.scale * Delta`` (caller rescales when ready —
        CoeffToSlot sums several transforms before a single rescale).
        Runs through the cached execution plan; bit-identical to emitting
        the loop eagerly, with the baby-step rotations hoisted by the
        optimizer.
        """
        if ct.level != self.level:
            raise ValueError(f"transform compiled for level {self.level}, got {ct.level}")
        return self.plan_for(ct.scale, galois_keys).run([ct])[0]

    def apply_batch(
        self,
        cts: list[Ciphertext],
        galois_keys: dict[tuple[int, int], SwitchingKey],
    ) -> list[Ciphertext]:
        """Evaluate M·x across many ciphertexts with one replayed plan."""
        if not cts:
            return []
        plan = self.plan_for(cts[0].scale, galois_keys)
        return [out for (out,) in plan.run_batch([[ct] for ct in cts])]
