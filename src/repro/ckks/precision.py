"""Precision measurement for reduced-mantissa datapaths (paper Fig. 3c).

The paper sizes the RFE's floating-point datapath by sweeping the FFT
mantissa width and measuring the resulting *bootstrapping precision* —
the usable message precision after the encode -> (server round trip) ->
decode pipeline.  It reports ≥ 43 mantissa bits ⇒ 23.39 bits, above the
19.29-bit threshold that keeps AI models accurate [19].

We measure the same quantity on our functional pipeline: encode and decode
a random unit-magnitude message with the special FFT quantized to ``m``
mantissa bits, then report ``-log2(max |error|)``.  ``fft_passes``
emulates the extra CoeffToSlot/SlotToCoeff transforms a bootstrapping
round trip performs on the same reduced datapath; the default of 3
(encode IFFT + C2S + S2C) mirrors the paper's measurement point.
Absolute values differ from the paper's (their pipeline includes the
approximate mod-reduction of a real bootstrap); the reproduced claims are
the curve's *shape* — linear rise with mantissa width, saturation near
FP64, and a drop-off point below which precision collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transforms.fft import SpecialFft
from repro.transforms.fp_custom import FloatFormat

__all__ = ["PrecisionPoint", "measure_precision", "sweep_mantissa", "drop_off_point"]


@dataclass(frozen=True)
class PrecisionPoint:
    """One point of the Fig. 3(c) sweep."""

    mantissa_bits: int
    precision_bits: float


def measure_precision(
    slots: int,
    mantissa_bits: int,
    fft_passes: int = 3,
    trials: int = 3,
    seed: int = 7,
) -> float:
    """Message precision (bits) of an encode/decode round trip at a given
    mantissa width.

    A "pass" is one forward+inverse special-FFT round trip on the reduced
    datapath; precision is ``-log2(max error)`` for unit-scale messages,
    worst-case over ``trials`` random messages.
    """
    fmt = FloatFormat(sign_bits=1, exponent_bits=11, mantissa_bits=mantissa_bits)
    fft = SpecialFft.create(slots, fmt)
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(trials):
        msg = rng.uniform(-1, 1, slots) + 1j * rng.uniform(-1, 1, slots)
        values = msg.copy()
        for _ in range(fft_passes):
            values = fft.forward(fft.inverse(values))
        worst = max(worst, float(np.max(np.abs(values - msg))))
    if worst == 0.0:
        return float(mantissa_bits)  # exact round trip: bound by format
    return float(-np.log2(worst))


def sweep_mantissa(
    slots: int,
    mantissa_range: range = range(20, 53, 3),
    fft_passes: int = 3,
    trials: int = 2,
) -> list[PrecisionPoint]:
    """The Fig. 3(c) x-sweep: precision at each mantissa width."""
    return [
        PrecisionPoint(m, measure_precision(slots, m, fft_passes, trials))
        for m in mantissa_range
    ]


def drop_off_point(points: list[PrecisionPoint], threshold_bits: float = 19.29) -> int:
    """Smallest mantissa width whose precision clears the threshold.

    The paper's threshold is the 19.29-bit bootstrapping precision needed
    to preserve AI-model accuracy; it selects 43 mantissa bits (FP55).
    """
    for p in sorted(points, key=lambda p: p.mantissa_bits):
        if p.precision_bits >= threshold_bits:
            return p.mantissa_bits
    raise ValueError("no swept mantissa width reaches the threshold")
