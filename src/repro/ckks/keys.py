"""Key material and key generation for CKKS.

Everything random is expanded from a 128-bit XOF seed, mirroring the
accelerator's on-chip PRNG strategy (Section IV-B):

* the public key's uniform component ``a`` is *seed-shared* — only its
  16-byte seed needs storing/transmitting, the polynomial is re-expanded
  on demand (this is what shrinks the 16.5 MB public-key footprint);
* errors come from the discrete Gaussian sampler;
* the secret is ternary (optionally sparse).

Relinearization / Galois keys use per-limb CRT-idempotent gadget
decomposition: limb ``j`` of the switching key encrypts
``idem_j * s_target`` where ``idem_j`` is the CRT idempotent of ``q_j`` in
the level's composite modulus, so ``sum_j [c]_{q_j} * idem_j ≡ c (mod Q)``
reconstructs exactly with small (one-limb-sized) digit coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.ckks.params import CkksParameters
from repro.prng.samplers import DiscreteGaussianSampler, TernarySampler, UniformSampler
from repro.prng.xof import Xof
from repro.rns.basis import RnsBasis
from repro.rns.poly import EVAL, RnsPolynomial

__all__ = [
    "SecretKey",
    "PublicKey",
    "SwitchingKey",
    "KeyGenerator",
    "expand_uniform_poly",
    "rotation_galois_elt",
]


@lru_cache(maxsize=None)
def rotation_galois_elt(steps: int, slots: int, two_n: int) -> int:
    """Memoized ``5^steps mod 2N`` — the automorphism behind a rotation.

    The single source of truth for the rotation -> Galois-element mapping,
    shared by key generation, the evaluator, and the bootstrap pre-warm.
    """
    return pow(5, steps % slots, two_n)


@dataclass
class SecretKey:
    """Ternary secret ``s``, stored in the NTT domain at full level."""

    poly: RnsPolynomial

    def at_level(self, level: int) -> RnsPolynomial:
        """Restriction of the secret to the first ``level`` limbs."""
        return self.poly.drop_limbs(level)


@dataclass
class PublicKey:
    """Encryption key ``(b, a) = (-a*s + e, a)`` with seed-shared ``a``.

    Attributes:
        b: the masked component, NTT domain, full level.
        a_seed: 16-byte seed from which ``a`` is expanded per limb.
        a: the expanded uniform component (kept for convenience; a
            bandwidth-constrained client would re-expand from the seed).
    """

    b: RnsPolynomial
    a_seed: bytes
    a: RnsPolynomial


@dataclass
class SwitchingKey:
    """Key-switching key from some ``s_src`` to ``s`` at one level.

    ``pairs[j] = (b_j, a_j)`` with ``b_j = -a_j*s + e_j + idem_j * s_src``
    over the first ``level`` limbs, NTT domain.
    """

    level: int
    pairs: list[tuple[RnsPolynomial, RnsPolynomial]]
    _stacked: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _stacked_pre: dict = field(default_factory=dict, repr=False, compare=False)

    def stacked(self) -> tuple[np.ndarray, np.ndarray]:
        """The key as two stacked ``(L, L, N)`` tensors ``(B, A)``.

        ``B[j] = b_j.data`` / ``A[j] = a_j.data`` — the layout the batched
        key-switch engine contracts digit tensors against with one fused
        multiply-accumulate per component.  Built lazily, cached per key.
        """
        if self._stacked is None:
            b = np.stack([pair[0].data for pair in self.pairs])
            a = np.stack([pair[1].data for pair in self.pairs])
            b.setflags(write=False)
            a.setflags(write=False)
            self._stacked = (b, a)
        return self._stacked

    def stacked_pre(self, kern) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`stacked` in ``kern``'s precomputed constant form.

        Cached per backend *name* so e.g. the Montgomery domain conversion
        (or Barrett's Shoup quotients) of the key tensors happens once per
        key, not once per switch.  The eager engine calls this only when
        ``kern.constant_pre_cheap`` holds; the fused replayer calls it for
        every backend, amortizing the pre-form over many replays.  Pass
        host-namespace kernels only — device-namespaced pre-forms would
        poison the shared per-name cache.
        """
        name = type(kern).name
        cached = self._stacked_pre.get(name)
        if cached is None:
            b, a = self.stacked()
            cached = (kern.pre(b), kern.pre(a))
            self._stacked_pre[name] = cached
        return cached


def expand_uniform_poly(
    basis: RnsBasis, level: int, xof: Xof, domain: bytes
) -> RnsPolynomial:
    """Expand a uniform NTT-domain polynomial limb-by-limb from a seed.

    Sampling directly in the evaluation domain is uniform-preserving (the
    NTT is a bijection), which is exactly what hardware does to skip a
    transform.
    """
    rows = []
    for i, q in enumerate(basis.moduli[:level]):
        sampler = UniformSampler(q)
        rows.append(sampler.sample(xof, domain + b"|limb%d" % i, basis.degree))
    return RnsPolynomial(basis, np.stack(rows), EVAL)


@dataclass
class KeyGenerator:
    """Derives all key material from one master XOF.

    Attributes:
        params: CKKS parameters.
        basis: RNS modulus chain.
        xof: master PRNG; children are derived per purpose so streams
            never collide.
    """

    params: CkksParameters
    basis: RnsBasis
    xof: Xof
    _gauss: DiscreteGaussianSampler = field(init=False)

    def __post_init__(self) -> None:
        self._gauss = DiscreteGaussianSampler(self.params.error_stddev)

    def _error_poly(self, level: int, domain: bytes) -> RnsPolynomial:
        signed = self._gauss.sample_signed(self.xof, domain, self.basis.degree)
        return RnsPolynomial.from_signed_coeffs(self.basis, level, signed)

    def gen_secret(self) -> SecretKey:
        """Sample the ternary secret and lift it to the NTT domain."""
        sampler = TernarySampler(
            self.basis.moduli[0], hamming_weight=self.params.secret_hamming_weight
        )
        signed = sampler.sample_signed(self.xof, b"secret", self.basis.degree)
        poly = RnsPolynomial.from_signed_coeffs(
            self.basis, self.basis.num_primes, signed
        )
        return SecretKey(poly=poly.to_eval())

    def gen_public(self, sk: SecretKey) -> PublicKey:
        """Sample ``a`` from a published seed and mask it with the secret."""
        a_seed = self.xof.stream(b"pk-a-seed", 16)
        a = expand_uniform_poly(self.basis, self.basis.num_primes, Xof(a_seed), b"pk-a")
        e = self._error_poly(self.basis.num_primes, b"pk-e").to_eval()
        b = -(a * sk.poly) + e
        return PublicKey(b=b, a_seed=a_seed, a=a)

    def gen_switching_key(
        self, sk: SecretKey, source: RnsPolynomial, level: int, tag: bytes
    ) -> SwitchingKey:
        """Key-switching key taking ``source`` (NTT domain) onto ``sk``.

        Uses CRT-idempotent gadgets: ``idem_j ≡ 1 (mod q_j)``,
        ``≡ 0 (mod q_i, i != j)`` over the level's composite modulus.
        """
        if source.domain != EVAL:
            raise ValueError("source secret must be in the NTT domain")
        crt = self.basis.crt(level)
        pairs: list[tuple[RnsPolynomial, RnsPolynomial]] = []
        src = source.drop_limbs(level)
        for j, q_j in enumerate(self.basis.moduli[:level]):
            idem = crt.q_hat[j] * crt.q_hat_inv[j]  # CRT idempotent, big int
            a_j = expand_uniform_poly(
                self.basis, level, self.xof.derive(tag + b"|a%d" % j), tag
            )
            e_j = self._error_poly(level, tag + b"|e%d" % j).to_eval()
            idem_residues = [idem % q for q in self.basis.moduli[:level]]
            b_j = -(a_j * sk.at_level(level)) + e_j + src.scale_scalar(idem_residues)
            pairs.append((b_j, a_j))
        return SwitchingKey(level=level, pairs=pairs)

    def gen_relin(self, sk: SecretKey, levels: list[int]) -> dict[int, SwitchingKey]:
        """Relinearization keys (s^2 -> s) for each requested level."""
        s_squared = sk.poly * sk.poly
        return {
            lvl: self.gen_switching_key(sk, s_squared, lvl, b"relin-l%d" % lvl)
            for lvl in levels
        }

    def gen_conjugation(
        self, sk: SecretKey, levels: list[int]
    ) -> dict[int, SwitchingKey]:
        """Keys for complex conjugation (the Galois element X -> X^{-1}).

        Conjugating all message slots is the automorphism by ``2N - 1``;
        bootstrapping's CoeffToSlot needs it to split real and imaginary
        coefficient parts.
        """
        conj_elt = 2 * self.basis.degree - 1
        # EVAL-domain automorphism: a pure slot permutation, no NTT trip.
        s_conj = sk.poly.automorphism(conj_elt)
        return {
            lvl: self.gen_switching_key(sk, s_conj, lvl, b"conj-l%d" % lvl)
            for lvl in levels
        }

    def gen_galois(
        self, sk: SecretKey, rotations: list[int], levels: list[int]
    ) -> dict[tuple[int, int], SwitchingKey]:
        """Galois keys for slot rotations.

        Rotation by ``r`` slots corresponds to the automorphism
        ``X -> X^{5^r mod 2N}``; the returned dict is keyed by
        ``(rotation, level)``.
        """
        out: dict[tuple[int, int], SwitchingKey] = {}
        two_n = 2 * self.basis.degree
        for r in rotations:
            galois_elt = rotation_galois_elt(r, self.params.slots, two_n)
            s_rot = sk.poly.automorphism(galois_elt)
            for lvl in levels:
                out[(r, lvl)] = self.gen_switching_key(
                    sk, s_rot, lvl, b"galois-r%d-l%d" % (r, lvl)
                )
        return out
