"""Lattice security estimation against the Homomorphic Encryption Standard.

The paper targets "the 128-bit security standard" [5] with polynomial
degrees 2^14–2^16.  This module encodes the HE-standard tables (Albrecht
et al., homomorphicencryption.org) mapping ring degree to the maximum
total modulus width at a given security level for ternary secrets, plus
log-linear interpolation for estimates between table rows.

Used to validate that a :class:`~repro.ckks.params.CkksParameters` choice
(e.g. 24 x 36-bit primes at N = 2^16) actually meets its security target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.params import CkksParameters

__all__ = ["SecurityReport", "max_modulus_bits", "estimate_security_bits", "check_parameters"]

# HE-standard table: ring degree -> {security level: max log2(Q)} for
# ternary secrets (uniform in {-1,0,1}), classical attacks.
_HE_STANDARD: dict[int, dict[int, int]] = {
    1024: {128: 27, 192: 19, 256: 14},
    2048: {128: 54, 192: 37, 256: 29},
    4096: {128: 109, 192: 75, 256: 58},
    8192: {128: 218, 192: 152, 256: 118},
    16384: {128: 438, 192: 305, 256: 237},
    32768: {128: 881, 192: 611, 256: 476},
    65536: {128: 1772, 192: 1229, 256: 959},
}


def max_modulus_bits(degree: int, security: int = 128) -> int:
    """Largest total log2(Q) at a degree meeting a security level."""
    row = _HE_STANDARD.get(degree)
    if row is None:
        raise ValueError(
            f"degree {degree} not in the HE-standard table "
            f"({sorted(_HE_STANDARD)}); toy rings have no security"
        )
    if security not in row:
        raise ValueError(f"security level must be one of {sorted(row)}")
    return row[security]


def estimate_security_bits(degree: int, total_modulus_bits: float) -> float:
    """Approximate security of an (N, log Q) pair by interpolation.

    Security scales ~linearly in N / log(Q) for these parameter ranges;
    we interpolate between the table's security columns at the given
    degree (and clamp to [0, 300]).
    """
    row = _HE_STANDARD.get(degree)
    if row is None:
        raise ValueError(f"degree {degree} not in the HE-standard table")
    if total_modulus_bits <= 0:
        raise ValueError("modulus width must be positive")
    # Invert the (security -> logQ) map by fitting security ≈ c * N/logQ.
    points = [(sec, row[sec]) for sec in sorted(row)]
    ratios = [sec * logq for sec, logq in points]
    c = sum(ratios) / len(ratios)  # sec * logQ ≈ const at fixed N
    return max(0.0, min(300.0, c / total_modulus_bits))


@dataclass(frozen=True)
class SecurityReport:
    """Outcome of checking a parameter set against the standard."""

    degree: int
    total_modulus_bits: float
    limit_bits: int
    security_target: int
    estimated_bits: float

    @property
    def secure(self) -> bool:
        return self.total_modulus_bits <= self.limit_bits

    @property
    def margin_bits(self) -> float:
        """Unused modulus budget (negative when insecure)."""
        return self.limit_bits - self.total_modulus_bits


def check_parameters(params: CkksParameters, security: int = 128) -> SecurityReport:
    """Validate a CKKS parameter set against the HE standard.

    The paper's evaluation point — N = 2^16 with 24 x 36-bit primes
    (864 modulus bits) — passes the 128-bit column (1772 bits) with
    plenty of margin for bootstrapping's auxiliary moduli.
    """
    total = params.num_primes * params.prime_bits
    limit = max_modulus_bits(params.degree, security)
    return SecurityReport(
        degree=params.degree,
        total_modulus_bits=total,
        limit_bits=limit,
        security_target=security,
        estimated_bits=estimate_security_bits(params.degree, total),
    )
