"""Encryption and decryption (the client-side hot paths of Fig. 2a).

Encrypt (public-key):  ``ct = (v*pk_b + m + e0,  v*pk_a + e1)`` with a
dense ternary mask ``v`` and Gaussian errors — all PRNG-expanded, exactly
the data the accelerator's on-chip PRNG unit generates instead of fetching
from DRAM.

Decrypt: ``m' = c0 + c1*s`` (plus ``c2*s^2`` for unrelinearized
ciphertexts), followed by decode on the encoder side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.keys import PublicKey, SecretKey, expand_uniform_poly
from repro.ckks.params import CkksParameters
from repro.prng.samplers import DiscreteGaussianSampler, TernarySampler
from repro.prng.xof import Xof
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial

__all__ = ["Encryptor", "Decryptor"]


@dataclass
class Encryptor:
    """Public-key encryptor with deterministic PRNG-derived randomness.

    Attributes:
        params: CKKS parameters.
        basis: RNS chain.
        public_key: the (b, a) pair.
        xof: randomness source; each ``encrypt`` call uses a distinct
            counter so repeated encryptions never share masks.
    """

    params: CkksParameters
    basis: RnsBasis
    public_key: PublicKey
    xof: Xof
    _counter: int = 0
    _gauss: DiscreteGaussianSampler = field(init=False)

    def __post_init__(self) -> None:
        self._gauss = DiscreteGaussianSampler(self.params.error_stddev)

    def encrypt(self, plaintext: Plaintext, level: int | None = None) -> Ciphertext:
        """Encrypt a plaintext at the given level (default: plaintext's)."""
        level = plaintext.level if level is None else level
        if level > plaintext.level:
            raise ValueError("cannot encrypt above the plaintext's level")
        ctr = self._counter
        self._counter += 1
        n = self.basis.degree

        mask_sampler = TernarySampler(self.basis.moduli[0])
        v_signed = mask_sampler.sample_signed(self.xof, b"enc-v", n, counter=ctr)
        v = RnsPolynomial.from_signed_coeffs(self.basis, level, v_signed).to_eval()
        e0 = RnsPolynomial.from_signed_coeffs(
            self.basis, level, self._gauss.sample_signed(self.xof, b"enc-e0", n, counter=ctr)
        ).to_eval()
        e1 = RnsPolynomial.from_signed_coeffs(
            self.basis, level, self._gauss.sample_signed(self.xof, b"enc-e1", n, counter=ctr)
        ).to_eval()

        m = plaintext.poly.drop_limbs(level).to_eval()
        b = self.public_key.b.drop_limbs(level)
        a = self.public_key.a.drop_limbs(level)
        c0 = v * b + m + e0
        c1 = v * a + e1
        return Ciphertext(parts=[c0, c1], scale=plaintext.scale)

    def encrypt_symmetric_seeded(
        self, plaintext: Plaintext, secret: SecretKey, level: int | None = None
    ) -> tuple[Ciphertext, bytes]:
        """Symmetric encryption with a seed-shared ``c1``.

        Returns the ciphertext plus the 16-byte seed that regenerates
        ``c1``; only ``c0`` needs transmitting — the bandwidth trick the
        streaming accelerator exploits when writing fresh ciphertexts out
        over LPDDR5.
        """
        level = plaintext.level if level is None else level
        ctr = self._counter
        self._counter += 1
        seed = self.xof.stream(b"sym-c1-seed", 16, counter=ctr)
        c1 = expand_uniform_poly(self.basis, level, Xof(seed), b"sym-c1")
        e = RnsPolynomial.from_signed_coeffs(
            self.basis,
            level,
            self._gauss.sample_signed(self.xof, b"sym-e", self.basis.degree, counter=ctr),
        ).to_eval()
        m = plaintext.poly.drop_limbs(level).to_eval()
        c0 = -(c1 * secret.at_level(level)) + m + e
        return Ciphertext(parts=[c0, c1], scale=plaintext.scale), seed


@dataclass
class Decryptor:
    """Secret-key decryptor.

    Attributes:
        params: CKKS parameters.
        secret_key: the ternary secret in NTT form.
    """

    params: CkksParameters
    secret_key: SecretKey

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """``m' = sum_i c_i * s^i``, returned in the coefficient domain."""
        s = self.secret_key.at_level(ciphertext.level)
        acc = ciphertext.parts[0]
        s_power = None
        for part in ciphertext.parts[1:]:
            s_power = s if s_power is None else s_power * s
            acc = acc + part * s_power
        return Plaintext(poly=acc.to_coeff(), scale=ciphertext.scale)
