"""Batched, hoisting-aware key switching — the hot core of every rotation,
relinearization, BSGS linear layer, and bootstrap step.

The seed implementation looped over RNS digits: L separate digit
broadcasts, L batched-NTT dispatches (O(L²) NTT rows issued one L-row
matrix at a time), and 2L temporary polynomials per switch.  This engine
tensorizes the whole pipeline:

* **decompose** stacks all L digit rows into one ``(L, L, N)`` tensor
  (``tensor[j, i] = [x]_{q_j}`` re-reduced mod ``q_i``), re-reduces it with
  one whole-tensor kernel call, and forward-transforms it with exactly one
  :class:`~repro.transforms.ntt.BatchNtt` dispatch over the flattened
  ``(L·L, N)`` matrix;
* **apply** contracts the digit tensor against a switching key's two
  stacked ``(L, L, N)`` tensors with one fused multiply-accumulate per key
  component (:meth:`~repro.nums.kernels.ReducerKernel.mul_accumulate`,
  deferred reduction) — no per-digit temporaries;
* **permute** applies a Galois automorphism to a *decomposed* polynomial
  as a pure EVAL-domain slot permutation, which is what makes **hoisting**
  work: decompose once, then rotate-and-apply against many keys.  The BSGS
  inner loop and bootstrapping's CoeffToSlot/SlotToCoeff pay one inverse
  NTT for a whole batch of rotations instead of one per rotation.

``switch_reference`` preserves the seed's per-digit loop so tests can pin
bit-identity and benchmarks can measure the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.keys import SwitchingKey
from repro.rns.basis import RnsBasis
from repro.rns.poly import COEFF, EVAL, RnsPolynomial
from repro.transforms.ntt import galois_permutation

__all__ = ["DecomposedPoly", "KeySwitchEngine"]


@dataclass(frozen=True)
class DecomposedPoly:
    """A polynomial's full gadget decomposition, NTT domain, ready to be
    applied against any switching key at its level.

    Attributes:
        basis: the RNS chain.
        tensor: ``(L, L, N)`` uint64 — row ``j`` holds digit ``j`` (the
            coefficient-domain residues mod ``q_j``) re-expanded across all
            L limbs and forward-transformed.
    """

    basis: RnsBasis
    tensor: np.ndarray

    @property
    def level(self) -> int:
        return self.tensor.shape[0]


@dataclass(frozen=True)
class KeySwitchEngine:
    """Stateless batched key-switching engine over one RNS basis."""

    basis: RnsBasis

    # ------------------------------------------------------------------
    # Hoisting API: decompose once, apply many
    # ------------------------------------------------------------------

    def decompose(self, poly: RnsPolynomial) -> DecomposedPoly:
        """Gadget-decompose an NTT-domain polynomial (the hoistable half).

        One inverse BatchNtt (the digits are coefficient-domain residue
        rows), one whole-tensor re-reduction, and exactly one forward
        BatchNtt dispatch over the stacked ``(L·L, N)`` digit matrix.
        """
        if poly.domain != EVAL:
            raise ValueError("key switching expects an NTT-domain polynomial")
        lvl = poly.level
        coeff = poly.to_coeff()
        kern = self.basis.kernel(lvl)
        # tensor[j, i] = digit j broadcast onto limb i; digits are < q_j,
        # inside every limb's q_i^2 reduce() input range.
        wide = np.broadcast_to(
            coeff.data[:, np.newaxis, :], (lvl, lvl, self.basis.degree)
        )
        digits = kern.reduce(wide)
        return DecomposedPoly(
            basis=self.basis, tensor=self.basis.batch_ntt(lvl).forward(digits)
        )

    def permute(self, dec: DecomposedPoly, galois_elt: int) -> DecomposedPoly:
        """Apply X -> X^k to a decomposed polynomial, staying decomposed.

        Per-limb decomposition commutes with the automorphism, and in the
        NTT domain the automorphism is a pure slot permutation — so a
        hoisted rotation costs one fancy-index gather, zero transforms.

        Note on representatives: permuting decomposed digits negates
        sign-flipped coefficients mod each *limb's* modulus, yielding
        signed digits ``±d`` (|d| < q_j), where decomposing the permuted
        polynomial (the seed path) would carry ``q_j - d`` in [0, q_j).
        Both are valid gadget digits with the same magnitude bound — the
        switched ciphertext differs from the seed's only in its noise
        representative and decrypts identically (this is inherent to
        hoisting: the digits must be fixed before the rotation is known).
        """
        src = galois_permutation(self.basis.degree, galois_elt % (2 * self.basis.degree))
        return DecomposedPoly(basis=self.basis, tensor=dec.tensor[:, :, src])

    def apply(
        self, dec: DecomposedPoly, key: SwitchingKey
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Contract a decomposed polynomial against one switching key.

        The inner products ``sum_j digit_j * b_j`` / ``sum_j digit_j * a_j``
        run as one fused multiply-accumulate per key component over the
        stacked key tensors.
        """
        lvl = dec.level
        if key.level != lvl:
            raise ValueError(f"switching key level {key.level} != poly level {lvl}")
        kern = self.basis.kernel(lvl)
        if kern.constant_pre_cheap:
            # Key tensors cached in the backend's constant form (e.g. the
            # Montgomery domain) — one pre-formed conversion per key, a
            # single REDC per product here.
            b_pre, a_pre = key.stacked_pre(kern)
            out0 = kern.mul_pre_accumulate(dec.tensor, b_pre)
            out1 = kern.mul_pre_accumulate(dec.tensor, a_pre)
        else:
            b_stack, a_stack = key.stacked()
            out0 = kern.mul_accumulate(dec.tensor, b_stack)
            out1 = kern.mul_accumulate(dec.tensor, a_stack)
        return (
            RnsPolynomial(self.basis, out0, EVAL),
            RnsPolynomial(self.basis, out1, EVAL),
        )

    def switch(
        self, poly: RnsPolynomial, key: SwitchingKey
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """One-shot key switch (decompose + apply)."""
        return self.apply(self.decompose(poly), key)

    # ------------------------------------------------------------------
    # Reference path
    # ------------------------------------------------------------------

    def switch_reference(
        self, poly: RnsPolynomial, key: SwitchingKey
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """The seed's per-digit Python loop, kept for bit-identity tests
        and as the benchmark baseline.  Semantically (and bit-for-bit)
        equal to :meth:`switch`."""
        if poly.domain != EVAL:
            raise ValueError("key switching expects an NTT-domain polynomial")
        lvl = poly.level
        if key.level != lvl:
            raise ValueError(f"switching key level {key.level} != poly level {lvl}")
        coeff = poly.to_coeff()
        kern = self.basis.kernel(lvl)
        out0: RnsPolynomial | None = None
        out1: RnsPolynomial | None = None
        for j in range(lvl):
            digit_row = coeff.data[j]  # residues mod q_j
            wide = np.broadcast_to(digit_row, (lvl, digit_row.shape[0]))
            digit = RnsPolynomial(self.basis, kern.reduce(wide), COEFF).to_eval()
            b_j, a_j = key.pairs[j]
            t0 = digit * b_j
            t1 = digit * a_j
            out0 = t0 if out0 is None else out0 + t0
            out1 = t1 if out1 is None else out1 + t1
        assert out0 is not None and out1 is not None
        return out0, out1
