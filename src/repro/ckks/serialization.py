"""Wire formats for ciphertexts and keys, with residue bit-packing.

Every format this module emits is specified normatively — field tables,
byte layouts, versioning rules — in ``docs/formats.md``; keep the two in
sync.  The accelerator's DRAM-traffic accounting (Section IV-B, Fig. 6b)
counts residues at their *datapath width* — 44 bits — not at a lazy 64
bits, and fresh uploads ship ``(c0, seed)`` instead of two full
polynomials.  This module implements exactly those formats so the byte
counts the performance model charges are the byte counts the library
really emits:

* :func:`pack_residues` / :func:`unpack_residues` — arbitrary-width bit
  packing of uint64 residue arrays;
* :func:`serialize_ciphertext` / :func:`deserialize_ciphertext` — full
  ciphertexts (``CTF2``, any number of parts);
* :func:`serialize_seeded` / :func:`deserialize_seeded` — the compressed
  ``(c0, seed)`` upload format (``CTS2``, halves the client's write
  traffic);
* :func:`serialize_plaintext` / :func:`deserialize_plaintext` — encoded
  plaintexts (``PTX1``, either domain), so symbolic plan inputs can cross
  the multi-process worker boundary alongside ciphertexts;
* :func:`serialize_switching_key` / :func:`deserialize_switching_key` —
  relinearization / Galois keys (``SWK1``), the constants a shipped
  :class:`~repro.runtime.plan.ExecutionPlan` resolves by fingerprint;
* :func:`pack_frame` / :func:`read_frame` — the length-prefixed,
  CRC-guarded frame container the plan formats (``EPL1``/``PCS1``,
  :mod:`repro.runtime.plan_io`) are built from.

These formats are also the transport between the serving engine's parent
process and its forked workers (:mod:`repro.runtime.executor`); the
header carries the exact scale as a raw double so a round trip is
bit-exact even for the non-power-of-two scales a rescale produces, and
:func:`wire_coeff_bits` picks the narrowest packing that fits a basis.

Integration tests assert these sizes equal the
:class:`repro.accel.memory.TrafficModel` predictions.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.keys import SwitchingKey, expand_uniform_poly
from repro.prng.xof import Xof
from repro.rns.basis import RnsBasis
from repro.rns.poly import COEFF, EVAL, RnsPolynomial

__all__ = [
    "WireFormatError",
    "pack_residues",
    "unpack_residues",
    "pack_frame",
    "read_frame",
    "serialize_ciphertext",
    "deserialize_ciphertext",
    "serialize_seeded",
    "deserialize_seeded",
    "serialize_plaintext",
    "deserialize_plaintext",
    "serialize_switching_key",
    "deserialize_switching_key",
    "ciphertext_wire_bytes",
    "wire_coeff_bits",
    "CIPHERTEXT_MAGIC",
    "SEEDED_MAGIC",
    "PLAINTEXT_MAGIC",
    "SWITCHING_KEY_MAGIC",
]

# Public: consumers that sniff blob types (the serving-engine worker
# boundary, the plan constant store) must dispatch on these, never on
# hardcoded copies.
CIPHERTEXT_MAGIC = b"CTF2"
SEEDED_MAGIC = b"CTS2"
PLAINTEXT_MAGIC = b"PTX1"
SWITCHING_KEY_MAGIC = b"SWK1"


class WireFormatError(ValueError):
    """A wire blob failed decoding: wrong magic, truncation, or CRC
    mismatch.

    Subclasses :class:`ValueError` for backward compatibility, but gives
    the serving stack a *typed* corruption signal: the worker boundary
    maps it to :class:`repro.runtime.faults.WireCorruption` (a per-request
    typed reply) instead of letting a corrupt frame take a process down.
    """

_MAGIC_FULL = CIPHERTEXT_MAGIC
_MAGIC_SEED = SEEDED_MAGIC
_MAGIC_PLAIN = PLAINTEXT_MAGIC


def pack_residues(values: np.ndarray, bits: int) -> bytes:
    """Pack uint64 residues at ``bits`` bits each (little-endian bitstream)."""
    values = np.asarray(values, dtype=np.uint64).ravel()
    if bits < 1 or bits > 64:
        raise ValueError(f"bits must be in [1, 64], got {bits}")
    if len(values) and int(values.max()).bit_length() > bits:
        raise ValueError(
            f"value {values.max()} does not fit in {bits} bits"
        )
    shifts = np.arange(bits, dtype=np.uint64)
    bitmat = ((values[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bitmat.ravel(), bitorder="little").tobytes()


def unpack_residues(blob: bytes, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_residues`."""
    raw = np.unpackbits(np.frombuffer(blob, dtype=np.uint8), bitorder="little")
    needed = bits * count
    if len(raw) < needed:
        raise WireFormatError(f"blob too short: {len(raw)} bits < {needed}")
    bitmat = raw[:needed].reshape(count, bits).astype(np.uint64)
    shifts = np.arange(bits, dtype=np.uint64)
    return (bitmat << shifts).sum(axis=1, dtype=np.uint64)


def _poly_payload(poly: RnsPolynomial, bits: int) -> bytes:
    return b"".join(pack_residues(poly.data[i], bits) for i in range(poly.level))


def _poly_from_payload(
    basis: RnsBasis, blob: bytes, offset: int, level: int, bits: int, domain: str
) -> tuple[RnsPolynomial, int]:
    n = basis.degree
    row_bytes = (bits * n + 7) // 8
    rows = []
    for _ in range(level):
        rows.append(unpack_residues(blob[offset : offset + row_bytes], bits, n))
        offset += row_bytes
    return RnsPolynomial(basis, np.stack(rows), domain), offset


def _header(magic: bytes, ct, bits: int, size: int) -> bytes:
    # The scale ships as a raw double: rescaled ciphertexts carry
    # scale/q factors that a log2 round trip would perturb by an ulp,
    # and the worker boundary requires bit-exact transport.
    return magic + struct.pack(
        "<IIHHd",
        ct.poly.degree if isinstance(ct, Plaintext) else ct.parts[0].degree,
        0,
        ct.level,
        bits,
        float(ct.scale),
    ) + struct.pack("<H", size)


_HEADER_LEN = 4 + struct.calcsize("<IIHHd") + struct.calcsize("<H")


def serialize_ciphertext(ct: Ciphertext, coeff_bits: int = 44) -> bytes:
    """Full ciphertext: header + every part's packed residues."""
    for part in ct.parts:
        if part.domain != EVAL:
            raise ValueError("serialize NTT-domain ciphertexts (the wire form)")
    body = b"".join(_poly_payload(p, coeff_bits) for p in ct.parts)
    return _header(_MAGIC_FULL, ct, coeff_bits, ct.size) + body


def deserialize_ciphertext(blob: bytes, basis: RnsBasis) -> Ciphertext:
    if blob[:4] != _MAGIC_FULL:
        raise WireFormatError("not a full-ciphertext blob")
    degree, _, level, bits, scale = struct.unpack(
        "<IIHHd", blob[4 : 4 + struct.calcsize("<IIHHd")]
    )
    (size,) = struct.unpack("<H", blob[_HEADER_LEN - 2 : _HEADER_LEN])
    if degree != basis.degree:
        raise WireFormatError(
            f"degree mismatch: blob {degree}, basis {basis.degree}"
        )
    offset = _HEADER_LEN
    parts = []
    for _ in range(size):
        poly, offset = _poly_from_payload(basis, blob, offset, level, bits, EVAL)
        parts.append(poly)
    return Ciphertext(parts=parts, scale=scale)


def serialize_seeded(ct: Ciphertext, seed: bytes, coeff_bits: int = 44) -> bytes:
    """Compressed upload: header + packed c0 + 16-byte seed for c1."""
    if ct.size != 2:
        raise ValueError("seeded format carries exactly (c0, seed)")
    if len(seed) != 16:
        raise ValueError("seed must be 16 bytes")
    return (
        _header(_MAGIC_SEED, ct, coeff_bits, ct.size)
        + _poly_payload(ct.c0, coeff_bits)
        + seed
    )


def deserialize_seeded(blob: bytes, basis: RnsBasis) -> Ciphertext:
    """Rebuild the full ciphertext server-side, re-expanding c1."""
    if blob[:4] != _MAGIC_SEED:
        raise WireFormatError("not a seeded-ciphertext blob")
    degree, _, level, bits, scale = struct.unpack(
        "<IIHHd", blob[4 : 4 + struct.calcsize("<IIHHd")]
    )
    if degree != basis.degree:
        raise WireFormatError(
            f"degree mismatch: blob {degree}, basis {basis.degree}"
        )
    offset = _HEADER_LEN
    c0, offset = _poly_from_payload(basis, blob, offset, level, bits, EVAL)
    seed = blob[offset : offset + 16]
    c1 = expand_uniform_poly(basis, level, Xof(seed), b"sym-c1")
    return Ciphertext(parts=[c0, c1], scale=scale)


def serialize_plaintext(pt: Plaintext, coeff_bits: int = 44) -> bytes:
    """Encoded plaintext: header + packed residues, either domain.

    The size field doubles as the domain flag (0 = coefficient,
    1 = NTT/evaluation), since a plaintext is always one polynomial.
    """
    domain_flag = 1 if pt.poly.domain == EVAL else 0
    return _header(_MAGIC_PLAIN, pt, coeff_bits, domain_flag) + _poly_payload(
        pt.poly, coeff_bits
    )


def deserialize_plaintext(blob: bytes, basis: RnsBasis) -> Plaintext:
    if blob[:4] != _MAGIC_PLAIN:
        raise WireFormatError("not a plaintext blob")
    degree, _, level, bits, scale = struct.unpack(
        "<IIHHd", blob[4 : 4 + struct.calcsize("<IIHHd")]
    )
    (domain_flag,) = struct.unpack("<H", blob[_HEADER_LEN - 2 : _HEADER_LEN])
    if degree != basis.degree:
        raise WireFormatError(
            f"degree mismatch: blob {degree}, basis {basis.degree}"
        )
    domain = EVAL if domain_flag else COEFF
    poly, _ = _poly_from_payload(basis, blob, _HEADER_LEN, level, bits, domain)
    return Plaintext(poly=poly, scale=scale)


def serialize_switching_key(key: SwitchingKey, coeff_bits: int | None = None) -> bytes:
    """Key-switching key: ``SWK1`` header + ``level`` packed (b_j, a_j) pairs.

    Defaults to :func:`wire_coeff_bits` packing (the widest modulus of the
    key's basis), so any chain round-trips losslessly.  This is the
    canonical encoding plan constants are fingerprinted over
    (:mod:`repro.runtime.plan_io`).
    """
    basis = key.pairs[0][0].basis
    bits = coeff_bits if coeff_bits is not None else wire_coeff_bits(basis)
    header = SWITCHING_KEY_MAGIC + struct.pack(
        "<IHH", basis.degree, key.level, bits
    )
    body = b"".join(
        _poly_payload(b_j, bits) + _poly_payload(a_j, bits)
        for b_j, a_j in key.pairs
    )
    return header + body


def deserialize_switching_key(blob: bytes, basis: RnsBasis) -> SwitchingKey:
    if blob[:4] != SWITCHING_KEY_MAGIC:
        raise WireFormatError("not a switching-key blob")
    degree, level, bits = struct.unpack("<IHH", blob[4:12])
    if degree != basis.degree:
        raise WireFormatError(
            f"degree mismatch: blob {degree}, basis {basis.degree}"
        )
    offset = 12
    pairs: list[tuple[RnsPolynomial, RnsPolynomial]] = []
    for _ in range(level):
        b_j, offset = _poly_from_payload(basis, blob, offset, level, bits, EVAL)
        a_j, offset = _poly_from_payload(basis, blob, offset, level, bits, EVAL)
        pairs.append((b_j, a_j))
    return SwitchingKey(level=level, pairs=pairs)


# ---------------------------------------------------------------------------
# Frame container (shared by the plan formats, docs/formats.md "Frames")
# ---------------------------------------------------------------------------

_FRAME_OVERHEAD = 4 + 4 + 4  # tag + u32 length + u32 crc32


def pack_frame(tag: bytes, payload: bytes) -> bytes:
    """One frame: 4-byte tag, u32 payload length, payload, u32 CRC-32.

    The CRC covers only the payload; truncation is caught by the length
    prefix, corruption by the checksum.  Readers must skip frames whose
    tag they do not recognize (forward compatibility).
    """
    if len(tag) != 4:
        raise ValueError(f"frame tag must be 4 bytes, got {tag!r}")
    return tag + struct.pack("<I", len(payload)) + payload + struct.pack(
        "<I", zlib.crc32(payload)
    )


def read_frame(blob: bytes, offset: int) -> tuple[bytes, bytes, int]:
    """Read one frame at ``offset``; returns (tag, payload, next_offset).

    Raises :class:`WireFormatError` on truncation (declared length runs
    past the blob) or corruption (CRC mismatch).
    """
    if offset + 8 > len(blob):
        raise WireFormatError(
            f"truncated frame header at offset {offset} ({len(blob)} bytes total)"
        )
    tag = blob[offset : offset + 4]
    (length,) = struct.unpack_from("<I", blob, offset + 4)
    start = offset + 8
    end = start + length
    if end + 4 > len(blob):
        raise WireFormatError(
            f"truncated frame {tag!r}: payload of {length} bytes runs past "
            f"the end of the {len(blob)}-byte blob"
        )
    payload = blob[start:end]
    (crc,) = struct.unpack_from("<I", blob, end)
    if zlib.crc32(payload) != crc:
        raise WireFormatError(f"corrupt frame {tag!r}: CRC mismatch")
    return tag, payload, end + 4


def wire_coeff_bits(basis: RnsBasis) -> int:
    """Narrowest per-residue packing that fits every modulus in ``basis``.

    The 44-bit default models the accelerator datapath; the worker
    boundary instead packs at exactly the widest modulus so any basis —
    including toy test chains with >44-bit primes — round-trips losslessly.
    """
    return max(int(q).bit_length() for q in basis.moduli)


def ciphertext_wire_bytes(
    degree: int, level: int, parts: int, coeff_bits: int = 44, seeded: bool = False
) -> int:
    """Predicted wire size — must match TrafficModel's accounting."""
    row = (coeff_bits * degree + 7) // 8
    if seeded:
        return _HEADER_LEN + level * row + 16
    return _HEADER_LEN + parts * level * row
