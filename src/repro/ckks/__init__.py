"""The CKKS scheme: client-side encode/encrypt/decode/decrypt plus the
server-side evaluator needed for end-to-end flows.

Public entry points:

* :class:`repro.ckks.CkksContext` — one-stop construction;
* :func:`repro.ckks.bootstrappable_params` — the paper's N = 2^16 /
  24-level / 36-bit configuration;
* :func:`repro.ckks.toy_params` — small rings for tests and examples.
"""

from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.ckks.cheby import ChebyshevSeries, evaluate_chebyshev, sine_mod_series
from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.context import CkksContext
from repro.ckks.linear import HomomorphicLinearTransform
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encryptor import Decryptor, Encryptor
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import (
    KeyGenerator,
    PublicKey,
    SecretKey,
    SwitchingKey,
    expand_uniform_poly,
)
from repro.ckks.keyswitch import DecomposedPoly, KeySwitchEngine
from repro.ckks.params import CkksParameters, bootstrappable_params, toy_params
from repro.ckks.security import (
    SecurityReport,
    check_parameters,
    estimate_security_bits,
    max_modulus_bits,
)
from repro.ckks.serialization import (
    WireFormatError,
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_plaintext,
    deserialize_seeded,
    deserialize_switching_key,
    pack_frame,
    pack_residues,
    read_frame,
    serialize_ciphertext,
    serialize_plaintext,
    serialize_seeded,
    serialize_switching_key,
    unpack_residues,
    wire_coeff_bits,
)
from repro.ckks.bootstrap import measure_bootstrap_precision
from repro.ckks.precision import (
    PrecisionPoint,
    drop_off_point,
    measure_precision,
    sweep_mantissa,
)

__all__ = [
    "BootstrapConfig",
    "Bootstrapper",
    "ChebyshevSeries",
    "Ciphertext",
    "CkksContext",
    "HomomorphicLinearTransform",
    "evaluate_chebyshev",
    "SecurityReport",
    "WireFormatError",
    "check_parameters",
    "ciphertext_wire_bytes",
    "deserialize_ciphertext",
    "deserialize_plaintext",
    "deserialize_seeded",
    "deserialize_switching_key",
    "estimate_security_bits",
    "max_modulus_bits",
    "measure_bootstrap_precision",
    "pack_frame",
    "pack_residues",
    "read_frame",
    "serialize_ciphertext",
    "serialize_plaintext",
    "serialize_seeded",
    "serialize_switching_key",
    "wire_coeff_bits",
    "sine_mod_series",
    "unpack_residues",
    "CkksEncoder",
    "CkksParameters",
    "Decryptor",
    "Encryptor",
    "Evaluator",
    "DecomposedPoly",
    "KeyGenerator",
    "KeySwitchEngine",
    "Plaintext",
    "PrecisionPoint",
    "PublicKey",
    "SecretKey",
    "SwitchingKey",
    "bootstrappable_params",
    "drop_off_point",
    "expand_uniform_poly",
    "measure_precision",
    "sweep_mantissa",
    "toy_params",
]
