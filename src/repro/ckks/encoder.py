"""CKKS encoder / decoder: messages <-> scaled integer polynomials.

Encoding (Fig. 2a, top path): message slots -> special IFFT -> fold the
complex output into 2*slots real coefficients -> scale by Δ and round ->
expand into RNS residues.  Decoding is the exact reverse (Combine CRT ->
unfold -> special FFT).

The rounding step produces ~72-bit integers under the paper's double-scale
Δ, so the lift goes through exact Python integers — this is the same
big-int-to-RNS "Expand RNS" step the MSE hardware performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks.containers import Plaintext
from repro.ckks.params import CkksParameters
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial
from repro.transforms.fft import SpecialFft

__all__ = ["CkksEncoder"]


@dataclass(frozen=True)
class CkksEncoder:
    """Encoder bound to one parameter set and RNS basis.

    Attributes:
        params: CKKS parameters (ring degree, scale, FP format).
        basis: the RNS modulus chain plaintexts are expanded onto.
        fft: the special FFT kernel, running in ``params.fp_format``.
    """

    params: CkksParameters
    basis: RnsBasis
    fft: SpecialFft

    @classmethod
    def create(cls, params: CkksParameters, basis: RnsBasis) -> "CkksEncoder":
        if basis.degree != params.degree:
            raise ValueError("basis degree does not match parameters")
        return cls(params=params, basis=basis, fft=SpecialFft.create(params.slots, params.fp_format))

    def encode(
        self,
        values: np.ndarray,
        level: int | None = None,
        scale: float | None = None,
    ) -> Plaintext:
        """Encode up to ``slots`` complex values into a plaintext.

        Shorter inputs are zero-padded.  ``scale`` defaults to the
        parameter set's Δ; ``level`` to the full chain.
        """
        level = self.params.top_level if level is None else level
        scale = self.params.scale if scale is None else scale
        slots = self.params.slots
        values = np.asarray(values, dtype=np.complex128).ravel()
        if len(values) > slots:
            raise ValueError(f"at most {slots} slots, got {len(values)}")
        if len(values) < slots:
            values = np.concatenate([values, np.zeros(slots - len(values), dtype=np.complex128)])

        folded = self.fft.inverse(values)
        # Unfold: coefficient k gets Re, coefficient k + slots gets Im.
        real_coeffs = np.concatenate([folded.real, folded.imag])
        ints = [int(round(float(c) * scale)) for c in real_coeffs]
        poly = RnsPolynomial.from_bigint_coeffs(self.basis, level, ints)
        return Plaintext(poly=poly, scale=scale)

    def decode(self, plaintext: Plaintext) -> np.ndarray:
        """Decode a plaintext back to its complex slot values."""
        poly = plaintext.poly
        if poly.domain != "coeff":
            poly = poly.to_coeff()
        slots = self.params.slots
        big = poly.to_bigints(center=True)
        folded = np.array(
            [big[k] + 1j * big[k + slots] for k in range(slots)], dtype=np.complex128
        )
        folded /= plaintext.scale
        return self.fft.forward(folded)
