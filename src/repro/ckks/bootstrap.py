"""CKKS bootstrapping — the server-side operation the paper's parameters
exist to enable.

ABC-FHE's whole premise is that clients must encrypt at *bootstrappable*
parameters (N >= 2^14, large level budgets) so the server can refresh
ciphertexts indefinitely.  This module implements that refresh, composing
the pieces built elsewhere in the library:

1. **ModRaise** — reinterpret an exhausted level-1 ciphertext modulo the
   full chain; the plaintext becomes ``t = Δm + q0·I`` with a small
   hidden integer vector ``I``.
2. **CoeffToSlot** — one homomorphic linear transform (the inverse
   canonical embedding, :mod:`repro.ckks.linear`) plus one conjugation
   puts the coefficients of ``t`` into slots, split into real parts
   ``t_k`` and ``t_{k+n}``.
3. **EvalMod** — a Chebyshev sine series (:mod:`repro.ckks.cheby`)
   evaluates the centered reduction ``t -> t mod q0``, removing ``q0·I``.
4. **SlotToCoeff** — the forward embedding returns the cleaned
   coefficients to their places; the result encrypts the same message at
   a *higher* level than the input.

The measured output precision of this pipeline is the quantity the paper
calls *bootstrapping precision* (Fig. 3c): running the encoder/transform
stack at a reduced mantissa directly lowers it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ckks.cheby import evaluate_chebyshev, sine_mod_series
from repro.ckks.containers import Ciphertext
from repro.ckks.context import CkksContext
from repro.ckks.keys import SwitchingKey, rotation_galois_elt
from repro.ckks.linear import HomomorphicLinearTransform
from repro.nums.modular import centered_vec
from repro.rns.poly import RnsPolynomial
from repro.transforms.fft import embedding_matrix
from repro.transforms.ntt import galois_permutation

__all__ = ["BootstrapConfig", "Bootstrapper"]


@dataclass(frozen=True)
class BootstrapConfig:
    """Bootstrapping knobs.

    Attributes:
        input_scale_bits: scale of the exhausted input ciphertext; must be
            far below the base prime (q0 / scale is the EvalMod period,
            and |message| must stay well under it).
        eval_mod_degree: Chebyshev degree of the sine approximation.
        wraps: bound K on the hidden overflow count |I| of ModRaise;
            secure sparse secrets keep it single-digit.
    """

    input_scale_bits: int = 25
    eval_mod_degree: int = 63
    wraps: int = 7

    @property
    def input_scale(self) -> float:
        return float(2.0**self.input_scale_bits)


@dataclass
class Bootstrapper:
    """Precompiled bootstrapping pipeline for one context.

    Generates its own evaluation keys (relinearization for the EvalMod
    depth, rotation keys for both linear transforms, one conjugation key)
    at construction.
    """

    ctx: CkksContext
    config: BootstrapConfig = field(default_factory=BootstrapConfig)

    def __post_init__(self) -> None:
        ctx = self.ctx
        params = ctx.params
        slots = params.slots
        self.top_level = params.num_primes
        q0 = ctx.basis.moduli[0]
        self.eval_mod_modulus = q0 / self.config.input_scale

        # Level schedule: C2S consumes one rung, EvalMod consumes
        # 2 + ceil(log2 degree) rungs, S2C one more.
        rung = params.levels_per_multiplication
        self.c2s_level = self.top_level
        self.evalmod_in_level = self.c2s_level - rung
        # EvalMod rungs: affine map + Chebyshev basis (ceil(log2 d)) + combo.
        depth = 2 + max(1, (self.config.eval_mod_degree - 1).bit_length())
        self.s2c_level = self.evalmod_in_level - rung * depth
        self.output_level = self.s2c_level - rung
        if self.output_level < 1:
            raise ValueError(
                f"level budget exhausted: need >= {self.top_level - self.output_level + 1} "
                f"primes, have {self.top_level}"
            )

        embed = embedding_matrix(slots)
        inv_embed = np.linalg.inv(embed)
        self._coeff_to_slot = HomomorphicLinearTransform(
            ctx, 0.5 * inv_embed, level=self.c2s_level
        )
        self._slot_to_coeff = HomomorphicLinearTransform(
            ctx, embed, level=self.s2c_level
        )
        self._sine = sine_mod_series(
            self.eval_mod_modulus, self.config.wraps, self.config.eval_mod_degree
        )

        rotations = sorted(
            set(self._coeff_to_slot.required_rotations())
            | set(self._slot_to_coeff.required_rotations())
        )
        self._galois = ctx.keygen.gen_galois(
            ctx.secret_key, rotations, levels=[self.c2s_level, self.s2c_level]
        )
        self._conj = ctx.keygen.gen_conjugation(
            ctx.secret_key, levels=[self.evalmod_in_level]
        )
        relin_levels = list(range(2, self.evalmod_in_level + 1))
        self._relin = ctx.keygen.gen_relin(ctx.secret_key, relin_levels)

        # Pre-warm the EVAL-domain automorphism permutation tables so the
        # hoisted C2S/S2C rotations never pay the one-time O(N) table
        # build inside the bootstrap hot path.
        degree = ctx.basis.degree
        for r in rotations:
            galois_permutation(degree, rotation_galois_elt(r, slots, 2 * degree))
        galois_permutation(degree, 2 * degree - 1)

        # CoeffToSlot is traced+planned through the runtime on first use;
        # one plan per observed (level, scale) input shape.
        self._c2s_plans: dict[tuple[int, float], object] = {}

    # ------------------------------------------------------------------
    # Pipeline stages (public for tests and instrumentation)
    # ------------------------------------------------------------------

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a level-1 ciphertext modulo the full chain.

        The lifted ciphertext is then *scaled up* to the parameter scale Δ
        by an exact integer constant (1 encoded at scale Δ/Δ_in): the
        interpreted slot values are unchanged, but every subsequent
        rotation/relinearization's key-switching noise — which is
        absolute, ~q_j·σ·√N — now sits 2^-47 below the scale instead of
        drowning a 2^25-scale payload.
        """
        if ct.level != 1:
            raise ValueError(f"mod_raise expects a level-1 ciphertext, got {ct.level}")
        q0 = self.ctx.basis.moduli[0]
        parts = []
        for part in ct.parts:
            residues = part.to_coeff().data[0]
            lifted = RnsPolynomial.from_signed_coeffs(
                self.ctx.basis, self.top_level, centered_vec(residues, q0)
            )
            parts.append(lifted.to_eval())
        raised = Ciphertext(parts=parts, scale=ct.scale)
        boost = self.ctx.encoder.encode(
            np.ones(self.ctx.params.slots),
            level=self.top_level,
            scale=self.ctx.params.scale / ct.scale,
        )
        return self.ctx.evaluator.multiply_plain(raised, boost)

    def _emit_coeff_to_slot(self, ev, ct):
        """The C2S segment against any evaluator surface (eager or lazy)."""
        half_v = self._coeff_to_slot.emit(ev, ct, self._galois)
        half_v = ev.rescale(half_v, times=self.ctx.params.levels_per_multiplication)
        conj_v = ev.conjugate(half_v, self._conj)
        real_part = ev.add(half_v, conj_v)  # t_k / Delta_in
        imag_diff = ev.sub(half_v, conj_v)  # i * Im(v)
        minus_i = self._unit_plaintext(-1j, imag_diff.level)
        imag_part = ev.multiply_plain(imag_diff, minus_i)  # t_{k+n} / Delta_in
        return real_part, imag_part

    def coeff_to_slot(self, ct: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Slots <- coefficients, split into the two real halves.

        The whole segment — BSGS transform, rescale, conjugation, and the
        real/imaginary split — is traced once into a computation graph,
        optimized (the runtime hoists the BSGS baby steps onto a single
        gadget decomposition), and replayed from the plan cache on every
        subsequent bootstrap.
        """
        from repro.runtime import CtSpec, compile_fn

        plan_key = (ct.level, ct.scale)
        cached = self._c2s_plans.get(plan_key)
        if cached is None:
            cached = compile_fn(
                self._emit_coeff_to_slot,
                self.ctx.evaluator,
                [CtSpec(level=ct.level, scale=ct.scale)],
            )
            self._c2s_plans[plan_key] = cached
        real_part, imag_part = cached.run([ct])
        return real_part, imag_part

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Centered reduction mod q0/Δ_in via the Chebyshev sine."""
        return evaluate_chebyshev(self.ctx, self._sine, ct, self._relin)

    def slot_to_coeff(self, ct_real: Ciphertext, ct_imag: Ciphertext) -> Ciphertext:
        """Recombine the halves and return coefficients to their places."""
        ev = self.ctx.evaluator
        plus_i = self._unit_plaintext(1j, ct_imag.level)
        v = ev.add(ct_real, ev.multiply_plain(ct_imag, plus_i))
        lvl = self._slot_to_coeff.level
        v = _drop_to(v, lvl)
        out = self._slot_to_coeff.apply(v, self._galois)
        return ev.rescale(out, times=self.ctx.params.levels_per_multiplication)

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a level-1 ciphertext to ``output_level``."""
        raised = self.mod_raise(ct)
        t_real, t_imag = self.coeff_to_slot(raised)
        m_real = self.eval_mod(t_real)
        m_imag = self.eval_mod(t_imag)
        lvl = min(m_real.level, m_imag.level)
        return self.slot_to_coeff(_drop_to(m_real, lvl), _drop_to(m_imag, lvl))

    # ------------------------------------------------------------------

    def _unit_plaintext(self, unit: complex, level: int):
        """Encode ±i exactly (a single ±X^{N/2} monomial at scale 1)."""
        return self.ctx.encoder.encode(
            np.full(self.ctx.params.slots, unit, dtype=np.complex128),
            level=level,
            scale=1.0,
        )


def _drop_to(ct: Ciphertext, level: int) -> Ciphertext:
    if ct.level == level:
        return ct
    return Ciphertext([p.drop_limbs(level) for p in ct.parts], ct.scale)


def measure_bootstrap_precision(
    ctx: CkksContext, bootstrapper: Bootstrapper, trials: int = 1, seed: int = 11
) -> float:
    """Bootstrapping precision in bits — the paper's Fig. 3(c) metric.

    Encrypts unit-magnitude messages at level 1, bootstraps, and reports
    ``-log2(max error)``.  Running the context at a reduced FP mantissa
    (``toy_params(fp_format=...)``) measures that datapath's boot
    precision directly, since every C2S/S2C twiddle and encoding passes
    through the quantized encoder.
    """
    rng = np.random.default_rng(seed)
    worst = 0.0
    for _ in range(trials):
        z = rng.uniform(-1, 1, ctx.params.slots)
        ct = ctx.encryptor.encrypt(
            ctx.encoder.encode(z, level=1, scale=bootstrapper.config.input_scale)
        )
        out = bootstrapper.bootstrap(ct)
        err = float(np.max(np.abs(ctx.decrypt_decode(out).real - z)))
        worst = max(worst, err)
    return float(-math.log2(worst)) if worst > 0 else float("inf")
