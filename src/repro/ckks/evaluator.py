"""Homomorphic operations (the server-side counterpart, for end-to-end use).

ABC-FHE itself accelerates only the client side, but a usable library —
and the Fig. 1 end-to-end breakdown — needs the server's homomorphic
add / multiply / relinearize / rescale / rotate, so they are implemented
here with the same RNS substrate.

Key switching uses per-limb CRT-idempotent digits: decomposing a
polynomial into its residue rows keeps each digit below one prime, so the
switching noise stays ~q_j-sized rather than Q-sized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.keys import SwitchingKey
from repro.ckks.params import CkksParameters
from repro.rns.basis import RnsBasis
from repro.rns.poly import COEFF, EVAL, RnsPolynomial

__all__ = ["Evaluator"]

_SCALE_RTOL = 1e-9


@dataclass
class Evaluator:
    """Stateless homomorphic evaluator over one parameter set.

    Attributes:
        params: CKKS parameters.
        basis: the shared RNS chain.
    """

    params: CkksParameters
    basis: RnsBasis

    # ------------------------------------------------------------------
    # Linear operations
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise addition; scales must match."""
        self._check_scales(a, b)
        lvl = min(a.level, b.level)
        n = max(a.size, b.size)
        parts = []
        for i in range(n):
            pa = a.parts[i].drop_limbs(lvl) if i < a.size else None
            pb = b.parts[i].drop_limbs(lvl) if i < b.size else None
            if pa is None:
                parts.append(pb)
            elif pb is None:
                parts.append(pa)
            else:
                parts.append(pa + pb)
        return Ciphertext(parts=parts, scale=a.scale)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise subtraction; scales must match."""
        self._check_scales(a, b)
        neg = Ciphertext(parts=[-p for p in b.parts], scale=b.scale)
        return self.add(a, neg)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(parts=[-p for p in a.parts], scale=a.scale)

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Add an encoded plaintext (scales must match)."""
        if not math.isclose(ct.scale, pt.scale, rel_tol=_SCALE_RTOL):
            raise ValueError(f"scale mismatch: {ct.scale} vs {pt.scale}")
        m = pt.poly.drop_limbs(ct.level).to_eval()
        parts = [ct.parts[0] + m] + [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts=parts, scale=ct.scale)

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Multiply by an encoded plaintext; output scale is the product."""
        m = pt.poly.drop_limbs(ct.level).to_eval()
        parts = [p * m for p in ct.parts]
        return Ciphertext(parts=parts, scale=ct.scale * pt.scale)

    # ------------------------------------------------------------------
    # Multiplication / relinearization / rescaling
    # ------------------------------------------------------------------

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Tensor product of two degree-1 ciphertexts (3 parts, pre-relin)."""
        if a.size != 2 or b.size != 2:
            raise ValueError("multiply expects relinearized (2-part) inputs")
        lvl = min(a.level, b.level)
        a0, a1 = (p.drop_limbs(lvl) for p in a.parts)
        b0, b1 = (p.drop_limbs(lvl) for p in b.parts)
        return Ciphertext(
            parts=[a0 * b0, a0 * b1 + a1 * b0, a1 * b1],
            scale=a.scale * b.scale,
        )

    def relinearize(self, ct: Ciphertext, relin_keys: dict[int, SwitchingKey]) -> Ciphertext:
        """Fold the quadratic part back to degree 1 using the level's key."""
        if ct.size == 2:
            return ct.copy()
        if ct.size != 3:
            raise ValueError(f"can only relinearize 3-part ciphertexts, got {ct.size}")
        key = relin_keys.get(ct.level)
        if key is None:
            raise KeyError(f"no relinearization key for level {ct.level}")
        ks0, ks1 = self._key_switch(ct.parts[2], key)
        return Ciphertext(
            parts=[ct.parts[0] + ks0, ct.parts[1] + ks1], scale=ct.scale
        )

    def rescale(self, ct: Ciphertext, times: int = 1) -> Ciphertext:
        """Drop ``times`` primes, dividing the scale accordingly.

        Under the double-scale technique a multiplication is followed by
        ``times = 2`` rescalings (Section V-B's 36-bit primes).
        """
        parts = ct.parts
        scale = ct.scale
        for _ in range(times):
            lvl = parts[0].level
            q_last = self.basis.moduli[lvl - 1]
            parts = [p.to_coeff().rescale().to_eval() for p in parts]
            scale /= q_last
        return Ciphertext(parts=parts, scale=scale)

    def multiply_relin_rescale(
        self, a: Ciphertext, b: Ciphertext, relin_keys: dict[int, SwitchingKey]
    ) -> Ciphertext:
        """The standard multiply pipeline: tensor, relinearize, rescale x2."""
        prod = self.relinearize(self.multiply(a, b), relin_keys)
        return self.rescale(prod, times=self.params.levels_per_multiplication)

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------

    def rotate(
        self,
        ct: Ciphertext,
        steps: int,
        galois_keys: dict[tuple[int, int], SwitchingKey],
    ) -> Ciphertext:
        """Cyclically rotate message slots by ``steps`` positions."""
        key = galois_keys.get((steps, ct.level))
        if key is None:
            raise KeyError(f"no Galois key for rotation {steps} at level {ct.level}")
        galois_elt = pow(5, steps % self.params.slots, 2 * self.basis.degree)
        return self.apply_galois(ct, galois_elt, key)

    def conjugate(
        self, ct: Ciphertext, conj_keys: dict[int, SwitchingKey]
    ) -> Ciphertext:
        """Complex-conjugate every slot (automorphism X -> X^{-1})."""
        key = conj_keys.get(ct.level)
        if key is None:
            raise KeyError(f"no conjugation key at level {ct.level}")
        return self.apply_galois(ct, 2 * self.basis.degree - 1, key)

    def apply_galois(
        self, ct: Ciphertext, galois_elt: int, key: SwitchingKey
    ) -> Ciphertext:
        """Apply an arbitrary Galois automorphism and switch back to s."""
        if ct.size != 2:
            raise ValueError("relinearize before applying automorphisms")
        c0r = ct.parts[0].to_coeff().automorphism(galois_elt).to_eval()
        c1r = ct.parts[1].to_coeff().automorphism(galois_elt).to_eval()
        ks0, ks1 = self._key_switch(c1r, key)
        return Ciphertext(parts=[c0r + ks0, ks1], scale=ct.scale)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _key_switch(
        self, poly: RnsPolynomial, key: SwitchingKey
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Apply a switching key to an NTT-domain polynomial.

        Digits are the coefficient-domain residue rows; each is re-expanded
        across all limbs (values < q_j, so the signed lift is exact) and
        multiplied against the key pair.
        """
        if poly.domain != EVAL:
            raise ValueError("key switching expects an NTT-domain polynomial")
        lvl = poly.level
        if key.level != lvl:
            raise ValueError(f"switching key level {key.level} != poly level {lvl}")
        coeff = poly.to_coeff()
        kern = self.basis.kernel(lvl)
        out0: RnsPolynomial | None = None
        out1: RnsPolynomial | None = None
        for j in range(lvl):
            digit_row = coeff.data[j]  # residues mod q_j
            digit = RnsPolynomial(
                self.basis,
                _broadcast_digit(digit_row, kern, lvl),
                COEFF,
            ).to_eval()
            b_j, a_j = key.pairs[j]
            t0 = digit * b_j
            t1 = digit * a_j
            out0 = t0 if out0 is None else out0 + t0
            out1 = t1 if out1 is None else out1 + t1
        assert out0 is not None and out1 is not None
        return out0, out1

    def _check_scales(self, a: Ciphertext, b: Ciphertext) -> None:
        if not math.isclose(a.scale, b.scale, rel_tol=_SCALE_RTOL):
            raise ValueError(
                f"scale mismatch: {a.scale:g} vs {b.scale:g}; rescale first"
            )


def _broadcast_digit(digit_row, kern, level: int):
    """Residues mod q_j, re-reduced onto every limb of the level.

    One whole-matrix ``reduce`` through the active reducer backend — the
    digits are < q_j < 2^41, well inside every limb's q_i^2 input range.
    """
    import numpy as np

    wide = np.broadcast_to(digit_row, (level, digit_row.shape[0]))
    return kern.reduce(wide)
