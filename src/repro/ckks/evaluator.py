"""Homomorphic operations (the server-side counterpart, for end-to-end use).

ABC-FHE itself accelerates only the client side, but a usable library —
and the Fig. 1 end-to-end breakdown — needs the server's homomorphic
add / multiply / relinearize / rescale / rotate, so they are implemented
here with the same RNS substrate.

Key switching goes through the batched, hoisting-aware
:class:`~repro.ckks.keyswitch.KeySwitchEngine`: per-limb CRT-idempotent
digits (decomposing a polynomial into its residue rows keeps each digit
below one prime, so the switching noise stays ~q_j-sized rather than
Q-sized), stacked into one ``(L, L, N)`` tensor and contracted against the
key with fused multiply-accumulates.  Rotations and conjugations apply
their Galois automorphisms directly on NTT-domain data (a slot
permutation, zero transform round trips) and can *hoist* — decompose a
ciphertext once, then rotate-and-switch against many keys — which is what
the BSGS linear layer and bootstrapping exploit.  Multi-prime rescaling is
fused: ``times`` primes are divided out in a single coeff<->eval round
trip instead of one per prime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ckks.containers import Ciphertext, Plaintext
from repro.ckks.keys import SwitchingKey, rotation_galois_elt
from repro.ckks.keyswitch import DecomposedPoly, KeySwitchEngine
from repro.ckks.params import CkksParameters
from repro.rns.basis import RnsBasis
from repro.rns.poly import RnsPolynomial

__all__ = ["Evaluator", "SCALE_RTOL"]

#: Relative tolerance under which two ciphertext scales count as aligned.
#: Shared with the runtime's trace/plan-time checker
#: (:mod:`repro.runtime.trace`) so lazy and eager programs agree on what
#: "mismatched" means.
SCALE_RTOL = 1e-9


@dataclass
class Evaluator:
    """Stateless homomorphic evaluator over one parameter set.

    Attributes:
        params: CKKS parameters.
        basis: the shared RNS chain.
        keyswitch: the batched key-switching engine (built at init).
    """

    params: CkksParameters
    basis: RnsBasis
    keyswitch: KeySwitchEngine = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.keyswitch = KeySwitchEngine(self.basis)

    # ------------------------------------------------------------------
    # Linear operations
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise addition; scales must match."""
        self._check_scales(a, b, op="add")
        lvl = min(a.level, b.level)
        n = max(a.size, b.size)
        parts = []
        for i in range(n):
            pa = a.parts[i].drop_limbs(lvl) if i < a.size else None
            pb = b.parts[i].drop_limbs(lvl) if i < b.size else None
            if pa is None:
                parts.append(pb)
            elif pb is None:
                parts.append(pa)
            else:
                parts.append(pa + pb)
        return Ciphertext(parts=parts, scale=a.scale)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise subtraction; scales must match."""
        self._check_scales(a, b, op="sub")
        neg = Ciphertext(parts=[-p for p in b.parts], scale=b.scale)
        return self.add(a, neg)

    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext(parts=[-p for p in a.parts], scale=a.scale)

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Add an encoded plaintext (scales must match)."""
        if not math.isclose(ct.scale, pt.scale, rel_tol=SCALE_RTOL):
            raise ValueError(
                f"add_plain: scale mismatch: ciphertext scale {ct.scale:g} "
                f"(level {ct.level}) vs plaintext scale {pt.scale:g} "
                f"(level {pt.level}); re-encode the plaintext at the "
                f"ciphertext's scale"
            )
        m = pt.poly.drop_limbs(ct.level).to_eval()
        parts = [ct.parts[0] + m] + [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts=parts, scale=ct.scale)

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Multiply by an encoded plaintext; output scale is the product."""
        m = pt.poly.drop_limbs(ct.level).to_eval()
        parts = [p * m for p in ct.parts]
        return Ciphertext(parts=parts, scale=ct.scale * pt.scale)

    # ------------------------------------------------------------------
    # Multiplication / relinearization / rescaling
    # ------------------------------------------------------------------

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Tensor product of two degree-1 ciphertexts (3 parts, pre-relin)."""
        if a.size != 2 or b.size != 2:
            raise ValueError("multiply expects relinearized (2-part) inputs")
        lvl = min(a.level, b.level)
        a0, a1 = (p.drop_limbs(lvl) for p in a.parts)
        b0, b1 = (p.drop_limbs(lvl) for p in b.parts)
        return Ciphertext(
            parts=[a0 * b0, a0 * b1 + a1 * b0, a1 * b1],
            scale=a.scale * b.scale,
        )

    def relinearize(self, ct: Ciphertext, relin_keys: dict[int, SwitchingKey]) -> Ciphertext:
        """Fold the quadratic part back to degree 1 using the level's key."""
        if ct.size == 2:
            return ct.copy()
        if ct.size != 3:
            raise ValueError(f"can only relinearize 3-part ciphertexts, got {ct.size}")
        key = relin_keys.get(ct.level)
        if key is None:
            raise KeyError(f"no relinearization key for level {ct.level}")
        ks0, ks1 = self.keyswitch.switch(ct.parts[2], key)
        return Ciphertext(
            parts=[ct.parts[0] + ks0, ct.parts[1] + ks1], scale=ct.scale
        )

    def rescale(self, ct: Ciphertext, times: int = 1) -> Ciphertext:
        """Drop ``times`` primes, dividing the scale accordingly.

        Under the double-scale technique a multiplication is followed by
        ``times = 2`` rescalings (Section V-B's 36-bit primes).  The
        division is fused: one coeff<->eval round trip per part covers all
        ``times`` primes (:meth:`repro.rns.poly.RnsPolynomial.rescale`),
        instead of a full round trip per dropped prime.
        """
        if times == 0:
            return Ciphertext(parts=list(ct.parts), scale=ct.scale)
        lvl = ct.level
        scale = ct.scale
        for t in range(times):
            scale /= self.basis.moduli[lvl - 1 - t]
        parts = [p.to_coeff().rescale(times).to_eval() for p in ct.parts]
        return Ciphertext(parts=parts, scale=scale)

    def multiply_relin_rescale(
        self, a: Ciphertext, b: Ciphertext, relin_keys: dict[int, SwitchingKey]
    ) -> Ciphertext:
        """The standard multiply pipeline: tensor, relinearize, rescale x2."""
        prod = self.relinearize(self.multiply(a, b), relin_keys)
        return self.rescale(prod, times=self.params.levels_per_multiplication)

    # ------------------------------------------------------------------
    # Rotations
    # ------------------------------------------------------------------

    def decompose(self, ct: Ciphertext) -> DecomposedPoly:
        """Hoist a ciphertext's c1 decomposition for reuse across rotations.

        Pass the result as ``decomposed=`` to :meth:`rotate` /
        :meth:`apply_galois`: the expensive digit expansion (inverse NTT +
        batched forward NTT) runs once, each rotation then costs only a
        slot permutation plus the key contraction.
        """
        if ct.size != 2:
            raise ValueError("hoisting expects relinearized (2-part) ciphertexts")
        return self.keyswitch.decompose(ct.parts[1])

    def rotate(
        self,
        ct: Ciphertext,
        steps: int,
        galois_keys: dict[tuple[int, int], SwitchingKey],
        decomposed: DecomposedPoly | None = None,
    ) -> Ciphertext:
        """Cyclically rotate message slots by ``steps`` positions."""
        key = galois_keys.get((steps, ct.level))
        if key is None:
            raise KeyError(f"no Galois key for rotation {steps} at level {ct.level}")
        galois_elt = rotation_galois_elt(
            steps, self.params.slots, 2 * self.basis.degree
        )
        return self.apply_galois(ct, galois_elt, key, decomposed=decomposed)

    def conjugate(
        self, ct: Ciphertext, conj_keys: dict[int, SwitchingKey]
    ) -> Ciphertext:
        """Complex-conjugate every slot (automorphism X -> X^{-1})."""
        key = conj_keys.get(ct.level)
        if key is None:
            raise KeyError(f"no conjugation key at level {ct.level}")
        return self.apply_galois(ct, 2 * self.basis.degree - 1, key)

    def apply_galois(
        self,
        ct: Ciphertext,
        galois_elt: int,
        key: SwitchingKey,
        decomposed: DecomposedPoly | None = None,
    ) -> Ciphertext:
        """Apply an arbitrary Galois automorphism and switch back to s.

        Ciphertext parts stay in the NTT domain throughout: the
        automorphism is an EVAL-domain slot permutation (zero NTT round
        trips), and the key switch runs on the hoisted decomposition when
        one is supplied.
        """
        if ct.size != 2:
            raise ValueError("relinearize before applying automorphisms")
        engine = self.keyswitch
        c0r = ct.parts[0].automorphism(galois_elt)
        dec = decomposed if decomposed is not None else engine.decompose(ct.parts[1])
        ks0, ks1 = engine.apply(engine.permute(dec, galois_elt), key)
        return Ciphertext(parts=[c0r + ks0, ks1], scale=ct.scale)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_scales(self, a: Ciphertext, b: Ciphertext, *, op: str = "op") -> None:
        """Raise with full provenance when operand scales are misaligned.

        The message names the op and both operands' (level, scale) so a
        failing pipeline can be located without re-running under a
        debugger; the runtime's plan-time checker emits the same shape of
        message with the producing graph nodes attached.
        """
        if not math.isclose(a.scale, b.scale, rel_tol=SCALE_RTOL):
            raise ValueError(
                f"{op}: scale mismatch: lhs scale {a.scale:g} (level "
                f"{a.level}, {a.size} parts) vs rhs scale {b.scale:g} "
                f"(level {b.level}, {b.size} parts); rescale first"
            )
