"""One function per paper table/figure — the reproduction index.

Each module returns plain data (dataclasses / dicts); the ``benchmarks/``
tree prints the same rows/series the paper reports, and EXPERIMENTS.md
records paper-vs-measured for each.
"""

from repro.experiments.fig1 import BreakdownRow, fig1_breakdown
from repro.experiments.fig2 import WorkloadSummary, fig2_workload
from repro.experiments.fig3 import PrecisionSweep, fig3_precision_sweep
from repro.experiments.fig4 import (
    DesignSpaceResult,
    fig4a_sfg_example,
    fig4b_design_space,
)
from repro.experiments.fig5 import (
    LanePoint,
    PlatformLatency,
    fig5a_speedups,
    fig5b_lane_sweep,
    knee_lanes,
)
from repro.experiments.fig6 import (
    MemOptPoint,
    fig6a_area_progression,
    fig6b_memory_ablation,
    memopt_speedup,
)
from repro.experiments.tables import (
    Table1Row,
    sec4b_footprint,
    sec4b_prime_count,
    table1_modmul_areas,
    table2_breakdown,
)

__all__ = [
    "BreakdownRow",
    "DesignSpaceResult",
    "LanePoint",
    "MemOptPoint",
    "PlatformLatency",
    "PrecisionSweep",
    "Table1Row",
    "WorkloadSummary",
    "fig1_breakdown",
    "fig2_workload",
    "fig3_precision_sweep",
    "fig4a_sfg_example",
    "fig4b_design_space",
    "fig5a_speedups",
    "fig5b_lane_sweep",
    "fig6a_area_progression",
    "fig6b_memory_ablation",
    "knee_lanes",
    "memopt_speedup",
    "sec4b_footprint",
    "sec4b_prime_count",
    "table1_modmul_areas",
    "table2_breakdown",
]
