"""Fig. 5 — headline performance results.

(a) execution time and speed-up of ABC-FHE vs the CPU and prior
accelerators, for encode+encrypt and decode+decrypt;
(b) the lanes-per-PNL sweep showing LPDDR5 capping the benefit at 8 lanes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.baselines import CpuModel, baseline_suite
from repro.accel.config import AcceleratorConfig, abc_fhe
from repro.accel.simulator import ClientSimulator, SimulationResult, sweep_lanes
from repro.accel.workload import ClientWorkload

__all__ = ["PlatformLatency", "fig5a_speedups", "LanePoint", "fig5b_lane_sweep"]

PAPER_SPEEDUP_CPU_ENC = 1112.0
PAPER_SPEEDUP_CPU_DEC = 963.0
PAPER_SPEEDUP_SOTA_ENC = 214.0
PAPER_SPEEDUP_SOTA_DEC = 82.0


@dataclass(frozen=True)
class PlatformLatency:
    """One bar pair of Fig. 5(a)."""

    platform: str
    encode_encrypt_s: float
    decode_decrypt_s: float


def fig5a_speedups(degree: int = 1 << 16) -> tuple[list[PlatformLatency], dict[str, float]]:
    """Latency table and ABC-FHE speed-up factors.

    Returns (platform rows, speedups) where speedups holds
    ``cpu_enc``, ``cpu_dec``, ``sota_enc``, ``sota_dec``.
    """
    w = ClientWorkload(degree=degree, enc_levels=24, dec_levels=2)
    sim = ClientSimulator(config=abc_fhe(), workload=w)
    abc_enc = sim.encode_encrypt().latency_seconds
    abc_dec = sim.decode_decrypt().latency_seconds

    cpu = CpuModel()
    cpu_enc = cpu.encode_encrypt_seconds(w)
    cpu_dec = cpu.decode_decrypt_seconds(w)

    rows = [PlatformLatency("ABC-FHE", abc_enc, abc_dec),
            PlatformLatency("CPU (i7-12700, Lattigo)", cpu_enc, cpu_dec)]
    speedups = {"cpu_enc": cpu_enc / abc_enc, "cpu_dec": cpu_dec / abc_dec}
    for name, model in baseline_suite().items():
        enc = model.encode_encrypt_seconds(abc_enc)
        dec = model.decode_decrypt_seconds(abc_dec)
        rows.append(PlatformLatency(name, enc, dec))
        key = "sota" if name == "[34]" else "aloha"
        speedups[f"{key}_enc"] = enc / abc_enc
        speedups[f"{key}_dec"] = dec / abc_dec
    return rows, speedups


@dataclass(frozen=True)
class LanePoint:
    """One x-position of Fig. 5(b)."""

    lanes: int
    result: SimulationResult

    @property
    def latency_ms(self) -> float:
        return self.result.latency_seconds * 1e3

    @property
    def throughput(self) -> float:
        return self.result.throughput_per_second


def fig5b_lane_sweep(
    degree: int = 1 << 16,
    lane_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    config: AcceleratorConfig | None = None,
) -> list[LanePoint]:
    """Latency/throughput vs lanes; the knee marks the LPDDR5 cap."""
    w = ClientWorkload(degree=degree, enc_levels=24, dec_levels=2)
    base = config or abc_fhe()
    return [LanePoint(l, r) for l, r in sweep_lanes(w, base, lane_counts)]


def knee_lanes(points: list[LanePoint], gain_threshold: float = 1.05) -> int:
    """First lane count beyond which latency stops improving meaningfully."""
    for a, b in zip(points, points[1:]):
        if a.result.latency_cycles / b.result.latency_cycles < gain_threshold:
            return a.lanes
    return points[-1].lanes
