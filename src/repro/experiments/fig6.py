"""Fig. 6 — area optimization and on-chip memory-optimization ablations.

(a) RFE area as the three optimizations are applied cumulatively
(TF scheduling -> Montgomery optimization -> reconfigurability);
(b) execution time vs polynomial degree for ABC-FHE_Base / _TF_Gen /
_All, reproducing the 8.2–9.3x latency reduction from on-chip generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.area import rfe_area_progression
from repro.accel.config import abc_fhe, abc_fhe_base, abc_fhe_tf_gen
from repro.accel.simulator import SimulationResult, sweep_degree

__all__ = ["fig6a_area_progression", "MemOptPoint", "fig6b_memory_ablation"]

PAPER_AREA_REDUCTION = 0.31
PAPER_MEMOPT_SPEEDUP_RANGE = (8.2, 9.3)


def fig6a_area_progression(degree: int = 1 << 16) -> dict[str, float]:
    """Relative RFE area at each optimization step (baseline = 1.0)."""
    absolute = rfe_area_progression(degree=degree)
    base = absolute["baseline"]
    return {name: area / base for name, area in absolute.items()}


@dataclass(frozen=True)
class MemOptPoint:
    """One (config, degree) cell of Fig. 6(b)."""

    config_name: str
    degree: int
    result: SimulationResult

    @property
    def latency_ms(self) -> float:
        return self.result.latency_seconds * 1e3


def fig6b_memory_ablation(
    degrees: tuple[int, ...] = (1 << 13, 1 << 14, 1 << 15, 1 << 16),
    enc_levels: int = 24,
) -> list[MemOptPoint]:
    """Encode+encrypt latency for the three generation configurations."""
    out: list[MemOptPoint] = []
    for name, cfg in (
        ("ABC-FHE_Base", abc_fhe_base()),
        ("ABC-FHE_TF_Gen", abc_fhe_tf_gen()),
        ("ABC-FHE_All", abc_fhe()),
    ):
        for degree, result in sweep_degree(cfg, degrees, enc_levels=enc_levels):
            out.append(MemOptPoint(config_name=name, degree=degree, result=result))
    return out


def memopt_speedup(points: list[MemOptPoint], degree: int) -> float:
    """Base-over-All latency ratio at one degree (paper: 8.2–9.3x)."""
    base = next(
        p for p in points if p.config_name == "ABC-FHE_Base" and p.degree == degree
    )
    full = next(
        p for p in points if p.config_name == "ABC-FHE_All" and p.degree == degree
    )
    return base.result.latency_cycles / full.result.latency_cycles
