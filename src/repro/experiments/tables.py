"""Tables I and II plus the Section IV-B storage numbers.

Table I: modular-multiplier areas (Barrett / Montgomery / NTT-friendly).
Table II: component area/power breakdown of the full chip.
Section IV-B: client memory footprint and the on-chip-generation saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import calibration as cal
from repro.accel.area import AreaBreakdown, chip_area_breakdown, modmul_area_um2
from repro.accel.memory import MemoryFootprint, client_memory_footprint
from repro.nums.primegen import count_primes

__all__ = [
    "Table1Row",
    "table1_modmul_areas",
    "table2_breakdown",
    "sec4b_footprint",
    "sec4b_prime_count",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    algorithm: str
    area_um2: float
    pipeline_stages: int
    paper_area_um2: float

    @property
    def relative_error(self) -> float:
        return self.area_um2 / self.paper_area_um2 - 1.0


def table1_modmul_areas(bitwidth: int = 36) -> list[Table1Row]:
    """Model vs paper for the three reduction algorithms."""
    return [
        Table1Row(
            algorithm=a,
            area_um2=modmul_area_um2(bitwidth, a),
            pipeline_stages=cal.MODMUL_PIPELINE_STAGES[a],
            paper_area_um2=cal.TABLE1_AREAS_UM2[a],
        )
        for a in ("barrett", "montgomery", "ntt_friendly")
    ]


def table2_breakdown() -> AreaBreakdown:
    """The full chip breakdown at the shipped configuration."""
    return chip_area_breakdown()


def sec4b_footprint(degree: int = 1 << 16, levels: int = 24) -> MemoryFootprint:
    """Section IV-B's 16.5 / 8.25 / 8.25 MB accounting."""
    return client_memory_footprint(degree=degree, levels=levels)


def sec4b_prime_count(degree: int = 1 << 16) -> int:
    """Usable 32–36-bit NTT-friendly primes (paper: 443)."""
    return count_primes((36,), degree)
