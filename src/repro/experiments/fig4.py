"""Fig. 4 — twiddle-factor scheduling and multiplier-count design space.

(a) exact SFG multiplication counts for the 8-point example (merged
radix-2^n = 12, conventional radix-2 with pre-processing = more);
(b) the multiplier-count distribution across radix-2^k pipeline designs
for N = 2^14 … 2^16, in NTT and FFT modes, with the radix-2^n reductions
the paper headlines (29.7 % vs radix-2, 22.3 % vs radix-2^2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transforms.dataflow import (
    MultiplierCount,
    design_space,
    reduction_vs,
    sfg_multiplications_merged,
    sfg_multiplications_unmerged,
)

__all__ = ["DesignSpaceResult", "fig4a_sfg_example", "fig4b_design_space"]

PAPER_REDUCTION_VS_RADIX2 = 0.297
PAPER_REDUCTION_VS_RADIX22 = 0.223


@dataclass(frozen=True)
class DesignSpaceResult:
    """Fig. 4(b) for one (degree, mode) pair."""

    degree: int
    mode: str
    designs: list[MultiplierCount]
    reduction_vs_radix2: float
    reduction_vs_radix22: float

    @property
    def best(self) -> MultiplierCount:
        return min(self.designs, key=lambda d: d.total)

    def normalized_counts(self) -> list[tuple[str, float]]:
        """Counts normalized to the radix-2 design (the figure's x-axis)."""
        base = self.designs[0].total
        return [(d.name, d.total / base) for d in self.designs]


def fig4a_sfg_example(degree: int = 8) -> dict[str, int]:
    """The 8-point signal-flow-graph counts of Fig. 4(a)."""
    return {
        "radix_2n_merged": sfg_multiplications_merged(degree),
        "radix_2_preprocessing": sfg_multiplications_unmerged(degree),
    }


def fig4b_design_space(
    degrees: tuple[int, ...] = (1 << 14, 1 << 15, 1 << 16),
    lanes: int = 8,
    modes: tuple[str, ...] = ("ntt", "fft"),
) -> list[DesignSpaceResult]:
    """Every radix design point for each degree and mode."""
    out = []
    for mode in modes:
        for n in degrees:
            out.append(
                DesignSpaceResult(
                    degree=n,
                    mode=mode,
                    designs=design_space(n, lanes, mode),
                    reduction_vs_radix2=reduction_vs(n, lanes, 1, mode),
                    reduction_vs_radix22=reduction_vs(n, lanes, 2, mode),
                )
            )
    return out
