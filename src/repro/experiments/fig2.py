"""Fig. 2 — workload analysis of CKKS client-side operations.

(a) the operational flow is implemented functionally in :mod:`repro.ckks`;
(b) the op-count ratio — encode+encrypt ≈ 27.0 MOPs vs decode+decrypt ≈
2.9 MOPs at N = 2^16 with 24-level encryption and 2-level decryption —
is reproduced by :func:`fig2_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.workload import ClientWorkload, OpCounts

__all__ = ["WorkloadSummary", "fig2_workload"]

PAPER_ENC_MOPS = 27.0
PAPER_DEC_MOPS = 2.9


@dataclass(frozen=True)
class WorkloadSummary:
    """Both panels' numbers for one parameter point."""

    degree: int
    encode_encrypt: OpCounts
    decode_decrypt: OpCounts

    @property
    def enc_mops(self) -> float:
        return self.encode_encrypt.total / 1e6

    @property
    def dec_mops(self) -> float:
        return self.decode_decrypt.total / 1e6

    @property
    def ratio(self) -> float:
        return self.encode_encrypt.total / self.decode_decrypt.total


def fig2_workload(
    degree: int = 1 << 16, enc_levels: int = 24, dec_levels: int = 2
) -> WorkloadSummary:
    """Fig. 2(b) at the paper's parameter point (or any other)."""
    w = ClientWorkload(degree=degree, enc_levels=enc_levels, dec_levels=dec_levels)
    return WorkloadSummary(
        degree=degree,
        encode_encrypt=w.encode_encrypt_ops(),
        decode_decrypt=w.decode_decrypt_ops(),
    )
