"""Fig. 1 — end-to-end client/server execution-time breakdown.

The paper's motivating figure: running ResNet20 over FHE, once a SOTA
server ASIC ([9]) handles homomorphic evaluation, the *client* becomes the
bottleneck — 69.4 % of total time with the best prior client accelerator
[34], versus 30.6 % on the server.  ABC-FHE collapses the client share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import calibration as cal
from repro.accel.baselines import CpuModel, baseline_suite
from repro.accel.config import abc_fhe
from repro.accel.simulator import ClientSimulator
from repro.accel.workload import ClientWorkload

__all__ = ["BreakdownRow", "fig1_breakdown"]


@dataclass(frozen=True)
class BreakdownRow:
    """One bar of Fig. 1."""

    platform: str
    client_seconds: float
    server_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.client_seconds + self.server_seconds

    @property
    def client_share(self) -> float:
        return self.client_seconds / self.total_seconds

    @property
    def server_share(self) -> float:
        return self.server_seconds / self.total_seconds


def fig1_breakdown(degree: int = 1 << 16) -> list[BreakdownRow]:
    """Client+server time for each client platform (server fixed to [9]).

    Client time = encode+encrypt of the inputs plus decode+decrypt of the
    outputs for one ResNet20-FHE inference.
    """
    w = ClientWorkload(
        degree=degree,
        enc_levels=24,
        dec_levels=2,
    )
    sim = ClientSimulator(config=abc_fhe(), workload=w)
    abc_enc = sim.encode_encrypt().latency_seconds * cal.RESNET20_INPUT_CIPHERTEXTS
    abc_dec = sim.decode_decrypt().latency_seconds * cal.RESNET20_OUTPUT_CIPHERTEXTS

    cpu = CpuModel()
    cpu_client = (
        cpu.encode_encrypt_seconds(w) * cal.RESNET20_INPUT_CIPHERTEXTS
        + cpu.decode_decrypt_seconds(w) * cal.RESNET20_OUTPUT_CIPHERTEXTS
    )
    sota = baseline_suite()["[34]"]
    sota_client = (
        sota.encode_encrypt_seconds(abc_enc) + sota.decode_decrypt_seconds(abc_dec)
    )

    server = cal.SERVER_ASIC_EVAL_SECONDS
    return [
        BreakdownRow("CPU client + [9] server", cpu_client, server),
        BreakdownRow("CPU client + CPU server", cpu_client, cal.SERVER_CPU_EVAL_SECONDS),
        BreakdownRow("[34] client + [9] server", sota_client, server),
        BreakdownRow("ABC-FHE client + [9] server", abc_enc + abc_dec, server),
    ]
