"""Fig. 3(c) — bootstrapping precision vs floating-point mantissa width.

Sweeps the special-FFT datapath mantissa and measures round-trip message
precision (see :mod:`repro.ckks.precision` for the exact protocol and for
how our measured quantity relates to the paper's "Boot. prec.").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel import calibration as cal
from repro.ckks.precision import PrecisionPoint, drop_off_point, sweep_mantissa

__all__ = ["PrecisionSweep", "fig3_precision_sweep"]


@dataclass(frozen=True)
class PrecisionSweep:
    """The Fig. 3(c) curve plus the datapath decision it implies."""

    slots: int
    points: list[PrecisionPoint]
    threshold_bits: float
    chosen_mantissa: int

    def precision_at(self, mantissa_bits: int) -> float:
        for p in self.points:
            if p.mantissa_bits == mantissa_bits:
                return p.precision_bits
        raise KeyError(f"mantissa {mantissa_bits} not in sweep")


def fig3_precision_sweep(
    slots: int = 1 << 15,
    mantissa_range: range = range(20, 53, 3),
    fft_passes: int = 3,
) -> PrecisionSweep:
    """Run the sweep at the paper's ring size (N = 2^16 -> 2^15 slots).

    ``chosen_mantissa`` is the smallest swept width clearing the paper's
    19.29-bit threshold — the FP-format decision of Section III.
    """
    points = sweep_mantissa(slots, mantissa_range, fft_passes=fft_passes)
    return PrecisionSweep(
        slots=slots,
        points=points,
        threshold_bits=cal.BOOT_PRECISION_THRESHOLD,
        chosen_mantissa=drop_off_point(points, cal.BOOT_PRECISION_THRESHOLD),
    )
