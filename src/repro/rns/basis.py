"""RNS modulus chains with per-prime NTT contexts and reducer tables.

A CKKS modulus ``Q = q_0 * q_1 * ... * q_{L-1}`` is held as a chain of
NTT-friendly primes.  The paper follows the double-scale technique of [1]:
instead of ~72-bit scaling primes it uses pairs of 32–36-bit primes and
doubles the level count (12 -> 24 for N = 2^16), which is what lets the
datapath stay at 44 bits.

The basis is also the cache root for everything precomputable per prime:

* NTT contexts come from the process-level ``NttContext.cached`` store
  keyed by ``(degree, modulus, backend)`` — two bases sharing primes
  share twiddles;
* ``kernel(level)`` hands out reducer kernels whose per-limb tables
  (Barrett ``mu``, Montgomery ``-q^-1``/``R^2``) are broadcast as an
  ``(level, 1)`` column over whole residue matrices;
* ``batch_ntt(level)`` bundles the per-limb twiddles into one
  :class:`~repro.transforms.ntt.BatchNtt` so a full ``(L, N)`` polynomial
  transforms with one kernel dispatch per butterfly stage.

Caches are keyed by the active reducer backend, so switching backends
(e.g. ``with using_backend("montgomery")``) is safe mid-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nums.crt import CrtSystem
from repro.nums.kernels import ReducerKernel, default_backend_name, make_kernel
from repro.nums.primegen import NttFriendlyPrime, prime_chain
from repro.transforms.ntt import BatchNtt, NttContext
from repro.utils.bitops import ilog2

__all__ = ["RnsBasis"]


@dataclass(frozen=True)
class RnsBasis:
    """An RNS basis: ordered NTT-friendly primes plus transform tables.

    Attributes:
        degree: polynomial degree N shared by every limb.
        primes: the modulus chain (limb 0 first — the base prime that
            survives down to level 1).
    """

    degree: int
    primes: tuple[NttFriendlyPrime, ...]
    _kernel_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )
    _batch_ntt_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    @classmethod
    def create(
        cls,
        degree: int,
        num_primes: int,
        bitwidth: int = 36,
    ) -> "RnsBasis":
        """Generate a fresh basis of ``num_primes`` NTT-friendly primes."""
        ilog2(degree)
        chain = prime_chain(degree, num_primes, bitwidth=bitwidth)
        return cls(degree=degree, primes=tuple(chain))

    def __post_init__(self) -> None:
        values = [p.value for p in self.primes]
        if len(set(values)) != len(values):
            raise ValueError("RNS primes must be distinct")
        for p in self.primes:
            if not p.supports_degree(self.degree):
                raise ValueError(f"prime {p.value} cannot run a degree-{self.degree} NTT")

    @property
    def num_primes(self) -> int:
        return len(self.primes)

    @property
    def moduli(self) -> tuple[int, ...]:
        return tuple(p.value for p in self.primes)

    @property
    def ntt_contexts(self) -> tuple[NttContext, ...]:
        """One merged-twiddle NTT context per limb.

        A plain property (not cached on the basis): contexts come from
        the process-level store keyed by the *active* backend, so a
        ``using_backend`` switch is reflected immediately.
        """
        return tuple(NttContext.cached(self.degree, q) for q in self.moduli)

    # ------------------------------------------------------------------
    # Reducer tables (cached per level and active backend)
    # ------------------------------------------------------------------

    def kernel(self, level: int) -> ReducerKernel:
        """Reducer kernel over the first ``level`` limbs as an (L, 1) column.

        The returned kernel broadcasts per-row moduli over ``(level, N)``
        residue matrices; its precomputed tables are cached on the basis
        per (level, backend).
        """
        self._check_level(level)
        return self.kernel_range(0, level)

    def kernel_range(self, start: int, stop: int) -> ReducerKernel:
        """Reducer kernel over limbs ``start..stop-1`` as an (L, 1) column.

        The fused multi-prime rescale works on the *trailing* limbs of a
        level — a slice no prefix kernel covers — so kernels are cached per
        (start, stop, backend).
        """
        if not 0 <= start < stop <= self.num_primes:
            raise ValueError(
                f"limb range [{start}, {stop}) outside [0, {self.num_primes}]"
            )
        key = (start, stop, default_backend_name())
        kern = self._kernel_cache.get(key)
        if kern is None:
            q_col = np.array(self.moduli[start:stop], dtype=np.uint64).reshape(-1, 1)
            kern = make_kernel(q_col)
            self._kernel_cache[key] = kern
        return kern

    def batch_ntt(self, level: int) -> BatchNtt:
        """Whole-matrix NTT over the first ``level`` limbs (cached)."""
        self._check_level(level)
        key = (level, default_backend_name())
        bat = self._batch_ntt_cache.get(key)
        if bat is None:
            bat = BatchNtt.create(self.degree, self.moduli[:level])
            self._batch_ntt_cache[key] = bat
        return bat

    # ------------------------------------------------------------------

    def crt(self, level: int) -> CrtSystem:
        """CRT data for the first ``level`` limbs."""
        self._check_level(level)
        return CrtSystem.for_moduli(self.moduli[:level])

    def modulus_at(self, level: int) -> int:
        """The composite modulus ``q_0 * … * q_{level-1}``."""
        self._check_level(level)
        product = 1
        for q in self.moduli[:level]:
            product *= q
        return product

    def _check_level(self, level: int) -> None:
        if level < 1 or level > self.num_primes:
            raise ValueError(f"level must be in [1, {self.num_primes}], got {level}")
