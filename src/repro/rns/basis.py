"""RNS modulus chains with per-prime NTT contexts.

A CKKS modulus ``Q = q_0 * q_1 * ... * q_{L-1}`` is held as a chain of
NTT-friendly primes.  The paper follows the double-scale technique of [1]:
instead of ~72-bit scaling primes it uses pairs of 32–36-bit primes and
doubles the level count (12 -> 24 for N = 2^16), which is what lets the
datapath stay at 44 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.nums.crt import CrtSystem
from repro.nums.primegen import NttFriendlyPrime, prime_chain
from repro.transforms.ntt import NttContext
from repro.utils.bitops import ilog2

__all__ = ["RnsBasis"]


@dataclass(frozen=True)
class RnsBasis:
    """An RNS basis: ordered NTT-friendly primes plus transform tables.

    Attributes:
        degree: polynomial degree N shared by every limb.
        primes: the modulus chain (limb 0 first — the base prime that
            survives down to level 1).
    """

    degree: int
    primes: tuple[NttFriendlyPrime, ...]

    @classmethod
    def create(
        cls,
        degree: int,
        num_primes: int,
        bitwidth: int = 36,
    ) -> "RnsBasis":
        """Generate a fresh basis of ``num_primes`` NTT-friendly primes."""
        ilog2(degree)
        chain = prime_chain(degree, num_primes, bitwidth=bitwidth)
        return cls(degree=degree, primes=tuple(chain))

    def __post_init__(self) -> None:
        values = [p.value for p in self.primes]
        if len(set(values)) != len(values):
            raise ValueError("RNS primes must be distinct")
        for p in self.primes:
            if not p.supports_degree(self.degree):
                raise ValueError(f"prime {p.value} cannot run a degree-{self.degree} NTT")

    @property
    def num_primes(self) -> int:
        return len(self.primes)

    @property
    def moduli(self) -> tuple[int, ...]:
        return tuple(p.value for p in self.primes)

    @cached_property
    def ntt_contexts(self) -> tuple[NttContext, ...]:
        """One merged-twiddle NTT context per limb (built lazily)."""
        return tuple(NttContext.create(self.degree, q) for q in self.moduli)

    def crt(self, level: int) -> CrtSystem:
        """CRT data for the first ``level`` limbs."""
        self._check_level(level)
        return CrtSystem.for_moduli(self.moduli[:level])

    def modulus_at(self, level: int) -> int:
        """The composite modulus ``q_0 * … * q_{level-1}``."""
        self._check_level(level)
        product = 1
        for q in self.moduli[:level]:
            product *= q
        return product

    def _check_level(self, level: int) -> None:
        if level < 1 or level > self.num_primes:
            raise ValueError(f"level must be in [1, {self.num_primes}], got {level}")
