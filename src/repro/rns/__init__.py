"""Residue-number-system layer: modulus chains and RNS polynomials."""

from repro.rns.basis import RnsBasis
from repro.rns.poly import COEFF, EVAL, RnsPolynomial

__all__ = ["COEFF", "EVAL", "RnsBasis", "RnsPolynomial"]
