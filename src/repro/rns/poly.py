"""RNS polynomials: the data type everything in CKKS computes on.

An :class:`RnsPolynomial` is an element of ``Z_Q[X]/(X^N+1)`` stored as an
``(L, N)`` uint64 matrix of residues — one row per RNS limb — together with
a domain tag (coefficient vs NTT/evaluation).  Domain misuse (adding a
coefficient-domain poly to an evaluation-domain one, multiplying outside
the evaluation domain, …) raises immediately rather than silently
corrupting ciphertexts.

All arithmetic runs as whole-``(L, N)``-matrix kernel calls with per-row
modulus broadcasting (``RnsBasis.kernel``) — one vectorized dispatch per
operation instead of a Python loop over limbs — and the NTT round trips
go through :class:`~repro.transforms.ntt.BatchNtt`, which butterflies all
limbs in lockstep the way the accelerator streams its lanes.  The active
reducer backend (Barrett by default) decides how each modular product is
reduced; results are bit-identical across backends.

The big-integer lift (:meth:`to_bigints`) and its inverse are the exact
CRT reference paths the MSE hardware implements as "Expand RNS" and
"Combine CRT" (Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rns.basis import RnsBasis
from repro.transforms.ntt import galois_permutation

__all__ = ["RnsPolynomial", "COEFF", "EVAL"]

COEFF = "coeff"
EVAL = "eval"


@dataclass
class RnsPolynomial:
    """A polynomial over an RNS basis prefix.

    Attributes:
        basis: the modulus chain this polynomial lives on.
        data: ``(level, N)`` uint64 residue matrix.
        domain: ``"coeff"`` or ``"eval"`` (NTT domain).
    """

    basis: RnsBasis
    data: np.ndarray
    domain: str = COEFF

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.uint64)
        if self.data.ndim != 2 or self.data.shape[1] != self.basis.degree:
            raise ValueError(
                f"data must be (level, {self.basis.degree}); got {self.data.shape}"
            )
        if not 1 <= self.data.shape[0] <= self.basis.num_primes:
            raise ValueError(f"level {self.data.shape[0]} outside basis range")
        if self.domain not in (COEFF, EVAL):
            raise ValueError(f"unknown domain {self.domain!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, basis: RnsBasis, level: int, domain: str = COEFF) -> "RnsPolynomial":
        return cls(basis, np.zeros((level, basis.degree), dtype=np.uint64), domain)

    @classmethod
    def from_signed_coeffs(
        cls, basis: RnsBasis, level: int, coeffs: np.ndarray
    ) -> "RnsPolynomial":
        """Small signed integer coefficients -> residues on every limb.

        For |coeff| < q_min/2 this is the exact centered embedding; used
        for errors, ternary secrets, and already-rounded plaintexts.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape != (basis.degree,):
            raise ValueError(f"expected {basis.degree} coefficients")
        moduli = np.array(basis.moduli[:level], dtype=np.int64).reshape(-1, 1)
        return cls(basis, (coeffs[np.newaxis, :] % moduli).astype(np.uint64), COEFF)

    @classmethod
    def from_bigint_coeffs(
        cls, basis: RnsBasis, level: int, coeffs: list[int]
    ) -> "RnsPolynomial":
        """Arbitrary-precision coefficients -> RNS (the Expand-RNS step).

        Vectorized as chunked limb-wise reduction: each coefficient is
        split once into 16-bit chunks (one Python pass over the list), and
        every limb's residues come from a single fused multiply-accumulate
        of the chunk matrix against per-limb powers of ``2^16`` — replacing
        the former per-limb ``[c % q for c in coeffs]`` big-int loops.
        """
        if len(coeffs) != basis.degree:
            raise ValueError(f"expected {basis.degree} coefficients")
        n = basis.degree
        ints = [int(c) for c in coeffs]
        negative = np.array([c < 0 for c in ints], dtype=bool)
        mags = [-c if c < 0 else c for c in ints]
        max_bits = max((c.bit_length() for c in mags), default=0)
        num_chunks = max(1, (max_bits + 15) // 16)
        chunks = np.zeros((num_chunks, n), dtype=np.uint64)
        mask = (1 << 16) - 1
        for i, c in enumerate(mags):
            k = 0
            while c:
                chunks[k, i] = c & mask
                c >>= 16
                k += 1
        kern = basis.kernel(level)
        moduli = basis.moduli[:level]
        # Chunk values < 2^16 may exceed tiny moduli; one reduce() maps
        # them into canonical range before the weighted accumulation.
        wide = np.broadcast_to(chunks[:, None, :], (num_chunks, level, n))
        weights = np.array(
            [[pow(2, 16 * k, q) for q in moduli] for k in range(num_chunks)],
            dtype=np.uint64,
        ).reshape(num_chunks, level, 1)
        data = kern.mul_accumulate(kern.reduce(wide), weights)
        if negative.any():
            data = np.where(negative[np.newaxis, :], kern.neg(data), data)
        return cls(basis, data, COEFF)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        """Number of active limbs."""
        return self.data.shape[0]

    @property
    def degree(self) -> int:
        return self.basis.degree

    def moduli(self) -> tuple[int, ...]:
        return self.basis.moduli[: self.level]

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.data.copy(), self.domain)

    def _kernel(self, level: int | None = None):
        return self.basis.kernel(self.level if level is None else level)

    # ------------------------------------------------------------------
    # Domain transforms
    # ------------------------------------------------------------------

    def to_eval(self) -> "RnsPolynomial":
        """Coefficient -> NTT domain, all limbs batched."""
        if self.domain == EVAL:
            return self.copy()
        out = self.basis.batch_ntt(self.level).forward(self.data)
        return RnsPolynomial(self.basis, out, EVAL)

    def to_coeff(self) -> "RnsPolynomial":
        """NTT -> coefficient domain, all limbs batched."""
        if self.domain == COEFF:
            return self.copy()
        out = self.basis.batch_ntt(self.level).inverse(self.data)
        return RnsPolynomial(self.basis, out, COEFF)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial") -> int:
        if self.basis is not other.basis and self.basis.moduli != other.basis.moduli:
            raise ValueError("polynomials live on different bases")
        if self.domain != other.domain:
            raise ValueError(f"domain mismatch: {self.domain} vs {other.domain}")
        return min(self.level, other.level)

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        lvl = self._check_compatible(other)
        out = self._kernel(lvl).add(self.data[:lvl], other.data[:lvl])
        return RnsPolynomial(self.basis, out, self.domain)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        lvl = self._check_compatible(other)
        out = self._kernel(lvl).sub(self.data[:lvl], other.data[:lvl])
        return RnsPolynomial(self.basis, out, self.domain)

    def __neg__(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self._kernel().neg(self.data), self.domain)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Pointwise product — only legal in the evaluation domain."""
        if self.domain != EVAL or other.domain != EVAL:
            raise ValueError("polynomial products require the NTT domain; call to_eval()")
        lvl = self._check_compatible(other)
        out = self._kernel(lvl).mul(self.data[:lvl], other.data[:lvl])
        return RnsPolynomial(self.basis, out, EVAL)

    def scale_scalar(self, scalars: int | list[int]) -> "RnsPolynomial":
        """Multiply by a scalar (single int, or one residue per limb)."""
        if isinstance(scalars, int):
            per_limb = [scalars % q for q in self.moduli()]
        else:
            if len(scalars) != self.level:
                raise ValueError("need one scalar per active limb")
            per_limb = [int(s) % q for s, q in zip(scalars, self.moduli())]
        col = np.array(per_limb, dtype=np.uint64).reshape(-1, 1)
        out = self._kernel().mul(self.data, col)
        return RnsPolynomial(self.basis, out, self.domain)

    def automorphism(self, k: int) -> "RnsPolynomial":
        """Apply X -> X^k (k odd) in either domain.

        The Galois automorphisms behind CKKS slot rotations.  In the
        coefficient domain this is an index permutation with negacyclic
        sign flips for exponents that cross N; in the evaluation domain the
        odd powers of ψ permute among themselves, so it is a *pure* slot
        permutation (:func:`~repro.transforms.ntt.galois_permutation`) —
        no sign flips and no NTT round trip.
        """
        n = self.degree
        if k % 2 == 0:
            raise ValueError("automorphism index must be odd")
        k %= 2 * n
        if self.domain == EVAL:
            src = galois_permutation(n, k)
            return RnsPolynomial(self.basis, self.data[:, src], EVAL)
        src = np.arange(n, dtype=np.int64)
        dest = (src * k) % (2 * n)
        wrap = dest >= n
        dest_idx = np.where(wrap, dest - n, dest)
        out = np.empty_like(self.data)
        negated = self._kernel().neg(self.data)
        out[:, dest_idx] = np.where(wrap[np.newaxis, :], negated, self.data)
        return RnsPolynomial(self.basis, out, COEFF)

    # ------------------------------------------------------------------
    # Level manipulation (rescale / mod-down)
    # ------------------------------------------------------------------

    def drop_limbs(self, new_level: int) -> "RnsPolynomial":
        """Forget trailing limbs (plain modulus reduction, no division)."""
        if not 1 <= new_level <= self.level:
            raise ValueError(f"new level must be in [1, {self.level}]")
        return RnsPolynomial(self.basis, self.data[:new_level].copy(), self.domain)

    def rescale(self, times: int = 1) -> "RnsPolynomial":
        """Divide by the last ``times`` primes (CKKS rescale) in one pass.

        Generalizes ``(x - [x]_P) * P^{-1}`` — the exact RNS rescaling of
        Cheon et al.'s RNS-CKKS variant — to the composite
        ``P = q_{L-times} ... q_{L-1}``: the mixed-radix digits of
        ``[x]_P`` are derived from the *dropped* rows alone (a cheap
        ``(times, N)`` tail computation mirroring the sequential per-prime
        division digit for digit), then folded onto the kept rows with one
        broadcast-reduce, one fused multiply-accumulate, one subtract, and
        one scale — whole-matrix cost independent of ``times``, and
        bit-identical to applying the single-prime rescale ``times``
        times.
        """
        if self.domain != COEFF:
            raise ValueError("rescale operates in the coefficient domain")
        if not 1 <= times <= self.level - 1:
            raise ValueError(
                f"cannot rescale {times} primes from level {self.level} "
                f"below one limb"
            )
        lvl = self.level
        keep = lvl - times
        n = self.degree
        basis = self.basis
        # Mixed-radix digits of [x]_P, computed on the dropped tail block
        # exactly as the sequential division would produce them.
        block = self.data[keep:].copy()
        digits = np.empty((times, n), dtype=np.uint64)
        for t in range(times):
            rows = times - 1 - t  # dropped rows still undivided
            digit = block[rows]
            digits[t] = digit
            if rows:
                bk = basis.kernel_range(keep, keep + rows)
                q_d = basis.moduli[lvl - 1 - t]
                inv = np.array(
                    [pow(q_d, -1, basis.moduli[keep + i]) for i in range(rows)],
                    dtype=np.uint64,
                ).reshape(-1, 1)
                red = bk.reduce(np.broadcast_to(digit, (rows, n)))
                block[:rows] = bk.mul(bk.sub(block[:rows], red), inv)
        # [x]_P mod q_i = sum_t (q_{L-1} ... q_{L-t}) * digit_t, one MAC.
        kern = self._kernel(keep)
        kept_moduli = basis.moduli[:keep]
        weights = np.empty((times, keep, 1), dtype=np.uint64)
        radix = 1
        for t in range(times):
            weights[t, :, 0] = [radix % q for q in kept_moduli]
            radix *= basis.moduli[lvl - 1 - t]
        wide = np.broadcast_to(digits[:, np.newaxis, :], (times, keep, n))
        remainder = kern.mul_accumulate(kern.reduce(wide), weights)
        inv_col = np.array(
            [pow(radix, -1, q_i) for q_i in kept_moduli], dtype=np.uint64
        ).reshape(-1, 1)
        diff = kern.sub(self.data[:keep], remainder)
        return RnsPolynomial(self.basis, kern.mul(diff, inv_col), COEFF)

    # ------------------------------------------------------------------
    # Exact lifts
    # ------------------------------------------------------------------

    def to_bigints(self, center: bool = True) -> list[int]:
        """CRT-combine every coefficient into a Python int (Combine CRT)."""
        if self.domain != COEFF:
            raise ValueError("lift from the coefficient domain")
        crt = self.basis.crt(self.level)
        return crt.combine_array([self.data[i] for i in range(self.level)], center=center)
