"""RNS polynomials: the data type everything in CKKS computes on.

An :class:`RnsPolynomial` is an element of ``Z_Q[X]/(X^N+1)`` stored as an
``(L, N)`` uint64 matrix of residues — one row per RNS limb — together with
a domain tag (coefficient vs NTT/evaluation).  Domain misuse (adding a
coefficient-domain poly to an evaluation-domain one, multiplying outside
the evaluation domain, …) raises immediately rather than silently
corrupting ciphertexts.

All arithmetic runs as whole-``(L, N)``-matrix kernel calls with per-row
modulus broadcasting (``RnsBasis.kernel``) — one vectorized dispatch per
operation instead of a Python loop over limbs — and the NTT round trips
go through :class:`~repro.transforms.ntt.BatchNtt`, which butterflies all
limbs in lockstep the way the accelerator streams its lanes.  The active
reducer backend (Barrett by default) decides how each modular product is
reduced; results are bit-identical across backends.

The big-integer lift (:meth:`to_bigints`) and its inverse are the exact
CRT reference paths the MSE hardware implements as "Expand RNS" and
"Combine CRT" (Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rns.basis import RnsBasis

__all__ = ["RnsPolynomial", "COEFF", "EVAL"]

COEFF = "coeff"
EVAL = "eval"


@dataclass
class RnsPolynomial:
    """A polynomial over an RNS basis prefix.

    Attributes:
        basis: the modulus chain this polynomial lives on.
        data: ``(level, N)`` uint64 residue matrix.
        domain: ``"coeff"`` or ``"eval"`` (NTT domain).
    """

    basis: RnsBasis
    data: np.ndarray
    domain: str = COEFF

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.uint64)
        if self.data.ndim != 2 or self.data.shape[1] != self.basis.degree:
            raise ValueError(
                f"data must be (level, {self.basis.degree}); got {self.data.shape}"
            )
        if not 1 <= self.data.shape[0] <= self.basis.num_primes:
            raise ValueError(f"level {self.data.shape[0]} outside basis range")
        if self.domain not in (COEFF, EVAL):
            raise ValueError(f"unknown domain {self.domain!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, basis: RnsBasis, level: int, domain: str = COEFF) -> "RnsPolynomial":
        return cls(basis, np.zeros((level, basis.degree), dtype=np.uint64), domain)

    @classmethod
    def from_signed_coeffs(
        cls, basis: RnsBasis, level: int, coeffs: np.ndarray
    ) -> "RnsPolynomial":
        """Small signed integer coefficients -> residues on every limb.

        For |coeff| < q_min/2 this is the exact centered embedding; used
        for errors, ternary secrets, and already-rounded plaintexts.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape != (basis.degree,):
            raise ValueError(f"expected {basis.degree} coefficients")
        moduli = np.array(basis.moduli[:level], dtype=np.int64).reshape(-1, 1)
        return cls(basis, (coeffs[np.newaxis, :] % moduli).astype(np.uint64), COEFF)

    @classmethod
    def from_bigint_coeffs(
        cls, basis: RnsBasis, level: int, coeffs: list[int]
    ) -> "RnsPolynomial":
        """Arbitrary-precision coefficients -> RNS (the Expand-RNS step)."""
        if len(coeffs) != basis.degree:
            raise ValueError(f"expected {basis.degree} coefficients")
        rows = []
        for q in basis.moduli[:level]:
            rows.append(np.array([c % q for c in coeffs], dtype=np.uint64))
        return cls(basis, np.stack(rows), COEFF)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        """Number of active limbs."""
        return self.data.shape[0]

    @property
    def degree(self) -> int:
        return self.basis.degree

    def moduli(self) -> tuple[int, ...]:
        return self.basis.moduli[: self.level]

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.data.copy(), self.domain)

    def _kernel(self, level: int | None = None):
        return self.basis.kernel(self.level if level is None else level)

    # ------------------------------------------------------------------
    # Domain transforms
    # ------------------------------------------------------------------

    def to_eval(self) -> "RnsPolynomial":
        """Coefficient -> NTT domain, all limbs batched."""
        if self.domain == EVAL:
            return self.copy()
        out = self.basis.batch_ntt(self.level).forward(self.data)
        return RnsPolynomial(self.basis, out, EVAL)

    def to_coeff(self) -> "RnsPolynomial":
        """NTT -> coefficient domain, all limbs batched."""
        if self.domain == COEFF:
            return self.copy()
        out = self.basis.batch_ntt(self.level).inverse(self.data)
        return RnsPolynomial(self.basis, out, COEFF)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial") -> int:
        if self.basis is not other.basis and self.basis.moduli != other.basis.moduli:
            raise ValueError("polynomials live on different bases")
        if self.domain != other.domain:
            raise ValueError(f"domain mismatch: {self.domain} vs {other.domain}")
        return min(self.level, other.level)

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        lvl = self._check_compatible(other)
        out = self._kernel(lvl).add(self.data[:lvl], other.data[:lvl])
        return RnsPolynomial(self.basis, out, self.domain)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        lvl = self._check_compatible(other)
        out = self._kernel(lvl).sub(self.data[:lvl], other.data[:lvl])
        return RnsPolynomial(self.basis, out, self.domain)

    def __neg__(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self._kernel().neg(self.data), self.domain)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Pointwise product — only legal in the evaluation domain."""
        if self.domain != EVAL or other.domain != EVAL:
            raise ValueError("polynomial products require the NTT domain; call to_eval()")
        lvl = self._check_compatible(other)
        out = self._kernel(lvl).mul(self.data[:lvl], other.data[:lvl])
        return RnsPolynomial(self.basis, out, EVAL)

    def scale_scalar(self, scalars: int | list[int]) -> "RnsPolynomial":
        """Multiply by a scalar (single int, or one residue per limb)."""
        if isinstance(scalars, int):
            per_limb = [scalars % q for q in self.moduli()]
        else:
            if len(scalars) != self.level:
                raise ValueError("need one scalar per active limb")
            per_limb = [int(s) % q for s, q in zip(scalars, self.moduli())]
        col = np.array(per_limb, dtype=np.uint64).reshape(-1, 1)
        out = self._kernel().mul(self.data, col)
        return RnsPolynomial(self.basis, out, self.domain)

    def automorphism(self, k: int) -> "RnsPolynomial":
        """Apply X -> X^k (k odd) in the coefficient domain.

        The Galois automorphisms behind CKKS slot rotations; negacyclic
        wrap-around flips signs for exponents that cross N.
        """
        if self.domain != COEFF:
            raise ValueError("apply automorphisms in the coefficient domain")
        n = self.degree
        if k % 2 == 0:
            raise ValueError("automorphism index must be odd")
        k %= 2 * n
        src = np.arange(n, dtype=np.int64)
        dest = (src * k) % (2 * n)
        wrap = dest >= n
        dest_idx = np.where(wrap, dest - n, dest)
        out = np.empty_like(self.data)
        negated = self._kernel().neg(self.data)
        out[:, dest_idx] = np.where(wrap[np.newaxis, :], negated, self.data)
        return RnsPolynomial(self.basis, out, COEFF)

    # ------------------------------------------------------------------
    # Level manipulation (rescale / mod-down)
    # ------------------------------------------------------------------

    def drop_limbs(self, new_level: int) -> "RnsPolynomial":
        """Forget trailing limbs (plain modulus reduction, no division)."""
        if not 1 <= new_level <= self.level:
            raise ValueError(f"new level must be in [1, {self.level}]")
        return RnsPolynomial(self.basis, self.data[:new_level].copy(), self.domain)

    def rescale(self) -> "RnsPolynomial":
        """Divide by the last limb's prime (CKKS rescale), dropping one level.

        Computes ``(x - [x]_{q_last}) * q_last^{-1}`` limb-wise — the exact
        RNS rescaling of Cheon et al.'s RNS-CKKS variant — as two
        whole-matrix kernel calls: the last limb's residues are re-reduced
        onto every remaining row, subtracted, and scaled by the
        per-row inverse column.
        """
        if self.level < 2:
            raise ValueError("cannot rescale below one limb")
        if self.domain != COEFF:
            raise ValueError("rescale operates in the coefficient domain")
        lvl = self.level
        q_last = self.basis.moduli[lvl - 1]
        kern = self._kernel(lvl - 1)
        last = np.broadcast_to(self.data[lvl - 1], (lvl - 1, self.degree))
        diff = kern.sub(self.data[: lvl - 1], kern.reduce(last))
        inv_col = np.array(
            [pow(q_last, -1, q_i) for q_i in self.basis.moduli[: lvl - 1]],
            dtype=np.uint64,
        ).reshape(-1, 1)
        return RnsPolynomial(self.basis, kern.mul(diff, inv_col), COEFF)

    # ------------------------------------------------------------------
    # Exact lifts
    # ------------------------------------------------------------------

    def to_bigints(self, center: bool = True) -> list[int]:
        """CRT-combine every coefficient into a Python int (Combine CRT)."""
        if self.domain != COEFF:
            raise ValueError("lift from the coefficient domain")
        crt = self.basis.crt(self.level)
        return crt.combine_array([self.data[i] for i in range(self.level)], center=center)
