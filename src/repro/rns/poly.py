"""RNS polynomials: the data type everything in CKKS computes on.

An :class:`RnsPolynomial` is an element of ``Z_Q[X]/(X^N+1)`` stored as an
``(L, N)`` uint64 matrix of residues — one row per RNS limb — together with
a domain tag (coefficient vs NTT/evaluation).  Domain misuse (adding a
coefficient-domain poly to an evaluation-domain one, multiplying outside
the evaluation domain, …) raises immediately rather than silently
corrupting ciphertexts.

The big-integer lift (:meth:`to_bigints`) and its inverse are the exact
CRT reference paths the MSE hardware implements as "Expand RNS" and
"Combine CRT" (Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nums.modular import addmod_vec, mulmod_vec, negmod_vec, submod_vec
from repro.rns.basis import RnsBasis

__all__ = ["RnsPolynomial", "COEFF", "EVAL"]

COEFF = "coeff"
EVAL = "eval"


@dataclass
class RnsPolynomial:
    """A polynomial over an RNS basis prefix.

    Attributes:
        basis: the modulus chain this polynomial lives on.
        data: ``(level, N)`` uint64 residue matrix.
        domain: ``"coeff"`` or ``"eval"`` (NTT domain).
    """

    basis: RnsBasis
    data: np.ndarray
    domain: str = COEFF

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.uint64)
        if self.data.ndim != 2 or self.data.shape[1] != self.basis.degree:
            raise ValueError(
                f"data must be (level, {self.basis.degree}); got {self.data.shape}"
            )
        if not 1 <= self.data.shape[0] <= self.basis.num_primes:
            raise ValueError(f"level {self.data.shape[0]} outside basis range")
        if self.domain not in (COEFF, EVAL):
            raise ValueError(f"unknown domain {self.domain!r}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, basis: RnsBasis, level: int, domain: str = COEFF) -> "RnsPolynomial":
        return cls(basis, np.zeros((level, basis.degree), dtype=np.uint64), domain)

    @classmethod
    def from_signed_coeffs(
        cls, basis: RnsBasis, level: int, coeffs: np.ndarray
    ) -> "RnsPolynomial":
        """Small signed integer coefficients -> residues on every limb.

        For |coeff| < q_min/2 this is the exact centered embedding; used
        for errors, ternary secrets, and already-rounded plaintexts.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.shape != (basis.degree,):
            raise ValueError(f"expected {basis.degree} coefficients")
        rows = [
            (coeffs % np.int64(q)).astype(np.uint64) for q in basis.moduli[:level]
        ]
        return cls(basis, np.stack(rows), COEFF)

    @classmethod
    def from_bigint_coeffs(
        cls, basis: RnsBasis, level: int, coeffs: list[int]
    ) -> "RnsPolynomial":
        """Arbitrary-precision coefficients -> RNS (the Expand-RNS step)."""
        if len(coeffs) != basis.degree:
            raise ValueError(f"expected {basis.degree} coefficients")
        rows = []
        for q in basis.moduli[:level]:
            rows.append(np.array([c % q for c in coeffs], dtype=np.uint64))
        return cls(basis, np.stack(rows), COEFF)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        """Number of active limbs."""
        return self.data.shape[0]

    @property
    def degree(self) -> int:
        return self.basis.degree

    def moduli(self) -> tuple[int, ...]:
        return self.basis.moduli[: self.level]

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.data.copy(), self.domain)

    # ------------------------------------------------------------------
    # Domain transforms
    # ------------------------------------------------------------------

    def to_eval(self) -> "RnsPolynomial":
        """Coefficient -> NTT domain, limb by limb."""
        if self.domain == EVAL:
            return self.copy()
        rows = [
            self.basis.ntt_contexts[i].forward(self.data[i]) for i in range(self.level)
        ]
        return RnsPolynomial(self.basis, np.stack(rows), EVAL)

    def to_coeff(self) -> "RnsPolynomial":
        """NTT -> coefficient domain, limb by limb."""
        if self.domain == COEFF:
            return self.copy()
        rows = [
            self.basis.ntt_contexts[i].inverse(self.data[i]) for i in range(self.level)
        ]
        return RnsPolynomial(self.basis, np.stack(rows), COEFF)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial") -> int:
        if self.basis is not other.basis and self.basis.moduli != other.basis.moduli:
            raise ValueError("polynomials live on different bases")
        if self.domain != other.domain:
            raise ValueError(f"domain mismatch: {self.domain} vs {other.domain}")
        return min(self.level, other.level)

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        lvl = self._check_compatible(other)
        rows = [
            addmod_vec(self.data[i], other.data[i], self.basis.moduli[i])
            for i in range(lvl)
        ]
        return RnsPolynomial(self.basis, np.stack(rows), self.domain)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        lvl = self._check_compatible(other)
        rows = [
            submod_vec(self.data[i], other.data[i], self.basis.moduli[i])
            for i in range(lvl)
        ]
        return RnsPolynomial(self.basis, np.stack(rows), self.domain)

    def __neg__(self) -> "RnsPolynomial":
        rows = [negmod_vec(self.data[i], self.basis.moduli[i]) for i in range(self.level)]
        return RnsPolynomial(self.basis, np.stack(rows), self.domain)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Pointwise product — only legal in the evaluation domain."""
        if self.domain != EVAL or other.domain != EVAL:
            raise ValueError("polynomial products require the NTT domain; call to_eval()")
        lvl = self._check_compatible(other)
        rows = [
            mulmod_vec(self.data[i], other.data[i], self.basis.moduli[i])
            for i in range(lvl)
        ]
        return RnsPolynomial(self.basis, np.stack(rows), EVAL)

    def scale_scalar(self, scalars: int | list[int]) -> "RnsPolynomial":
        """Multiply by a scalar (single int, or one residue per limb)."""
        if isinstance(scalars, int):
            per_limb = [scalars % q for q in self.moduli()]
        else:
            if len(scalars) != self.level:
                raise ValueError("need one scalar per active limb")
            per_limb = [int(s) % q for s, q in zip(scalars, self.moduli())]
        rows = [
            mulmod_vec(self.data[i], per_limb[i], self.basis.moduli[i])
            for i in range(self.level)
        ]
        return RnsPolynomial(self.basis, np.stack(rows), self.domain)

    def automorphism(self, k: int) -> "RnsPolynomial":
        """Apply X -> X^k (k odd) in the coefficient domain.

        The Galois automorphisms behind CKKS slot rotations; negacyclic
        wrap-around flips signs for exponents that cross N.
        """
        if self.domain != COEFF:
            raise ValueError("apply automorphisms in the coefficient domain")
        n = self.degree
        if k % 2 == 0:
            raise ValueError("automorphism index must be odd")
        k %= 2 * n
        src = np.arange(n, dtype=np.int64)
        dest = (src * k) % (2 * n)
        wrap = dest >= n
        dest_idx = np.where(wrap, dest - n, dest)
        rows = []
        for i in range(self.level):
            q = self.basis.moduli[i]
            out = np.zeros(n, dtype=np.uint64)
            vals = self.data[i]
            out[dest_idx] = np.where(wrap, (np.uint64(q) - vals) % np.uint64(q), vals)
            rows.append(out)
        return RnsPolynomial(self.basis, np.stack(rows), COEFF)

    # ------------------------------------------------------------------
    # Level manipulation (rescale / mod-down)
    # ------------------------------------------------------------------

    def drop_limbs(self, new_level: int) -> "RnsPolynomial":
        """Forget trailing limbs (plain modulus reduction, no division)."""
        if not 1 <= new_level <= self.level:
            raise ValueError(f"new level must be in [1, {self.level}]")
        return RnsPolynomial(self.basis, self.data[:new_level].copy(), self.domain)

    def rescale(self) -> "RnsPolynomial":
        """Divide by the last limb's prime (CKKS rescale), dropping one level.

        Computes ``(x - [x]_{q_last}) * q_last^{-1}`` limb-wise — the exact
        RNS rescaling of Cheon et al.'s RNS-CKKS variant.  Requires the
        coefficient domain is NOT required: the correction term is the last
        limb's residues, which must first be brought to the coefficient
        domain if in NTT form; for simplicity we require coefficient domain.
        """
        if self.level < 2:
            raise ValueError("cannot rescale below one limb")
        if self.domain != COEFF:
            raise ValueError("rescale operates in the coefficient domain")
        q_last = self.basis.moduli[self.level - 1]
        last = self.data[self.level - 1]
        rows = []
        for i in range(self.level - 1):
            q_i = self.basis.moduli[i]
            inv = pow(q_last, -1, q_i)
            diff = submod_vec(self.data[i], last % np.uint64(q_i), q_i)
            rows.append(mulmod_vec(diff, inv, q_i))
        return RnsPolynomial(self.basis, np.stack(rows), COEFF)

    # ------------------------------------------------------------------
    # Exact lifts
    # ------------------------------------------------------------------

    def to_bigints(self, center: bool = True) -> list[int]:
        """CRT-combine every coefficient into a Python int (Combine CRT)."""
        if self.domain != COEFF:
            raise ValueError("lift from the coefficient domain")
        crt = self.basis.crt(self.level)
        return crt.combine_array([self.data[i] for i in range(self.level)], center=center)
