"""Reduced-precision floating-point emulation (the paper's FP55 format).

Section III (Fig. 3c) shrinks the FFT datapath from FP64 to a custom 55-bit
float — 1 sign, 11 exponent, 43 mantissa bits — after sweeping the mantissa
width and measuring the resulting bootstrapping precision.  We emulate any
such format on top of FP64 by re-quantizing the mantissa after every
arithmetic step (round-to-nearest-even via ``frexp``/``ldexp``), which is
exact as long as the emulated mantissa is at most 52 bits.

``FloatFormat.quantize`` is the hook the special-FFT kernels call between
butterfly stages, so a transform "computed in FP55" accumulates exactly the
rounding the hardware datapath would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FloatFormat", "FP64", "FP55", "FP32_LIKE"]


@dataclass(frozen=True)
class FloatFormat:
    """A custom floating-point format emulated over float64.

    Attributes:
        sign_bits: always 1; kept for total-width bookkeeping.
        exponent_bits: exponent field width (range is not emulated — CKKS
            values stay far from float64 overflow, matching the paper's
            focus on mantissa precision only).
        mantissa_bits: stored fraction bits (excluding the implicit leading
            one), the swept quantity of Fig. 3(c).
    """

    sign_bits: int
    exponent_bits: int
    mantissa_bits: int

    def __post_init__(self) -> None:
        if self.mantissa_bits < 1 or self.mantissa_bits > 52:
            raise ValueError(
                f"emulatable mantissa range is 1..52 bits, got {self.mantissa_bits}"
            )

    @property
    def total_bits(self) -> int:
        """Total storage width (Fig. 3c's FP55 = 1 + 11 + 43)."""
        return self.sign_bits + self.exponent_bits + self.mantissa_bits

    @property
    def is_native(self) -> bool:
        """True when quantization is a no-op (the FP64 reference datapath)."""
        return self.mantissa_bits >= 52

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round values to this format's mantissa (nearest, ties-to-even).

        Handles real or complex arrays; complex parts are rounded
        independently, matching a hardware datapath with separate real and
        imaginary lanes.
        """
        if self.is_native:
            return np.asarray(x)
        x = np.asarray(x)
        if np.iscomplexobj(x):
            return self.quantize(x.real) + 1j * self.quantize(x.imag)
        mantissa, exponent = np.frexp(x)
        # frexp mantissa is in [0.5, 1); it carries mantissa_bits+1
        # significant bits including the leading one.
        scaled = np.ldexp(mantissa, self.mantissa_bits + 1)
        return np.ldexp(np.rint(scaled), exponent - self.mantissa_bits - 1)

    def ulp(self, magnitude: float = 1.0) -> float:
        """Unit in the last place at the given magnitude."""
        return float(2.0 ** (np.floor(np.log2(abs(magnitude))) - self.mantissa_bits))


FP64 = FloatFormat(sign_bits=1, exponent_bits=11, mantissa_bits=52)
"""The reference double-precision datapath prior works rely on."""

FP55 = FloatFormat(sign_bits=1, exponent_bits=11, mantissa_bits=43)
"""ABC-FHE's custom format: 43 mantissa bits ⇒ 23.39-bit boot precision."""

FP32_LIKE = FloatFormat(sign_bits=1, exponent_bits=8, mantissa_bits=23)
"""Single-precision-like format, below the Fig. 3(c) drop-off point."""
