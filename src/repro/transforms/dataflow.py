"""Pipelined Fourier-engine dataflow models (paper Fig. 4, Section IV-A).

Two complementary accountings live here:

1. **Exact SFG counting** — build the actual signal-flow graph of a
   negacyclic NTT (merged or unmerged ψ handling) and count how many
   butterfly edges carry a non-trivial twiddle.  This reproduces the
   Fig. 4(a) 8-point example: the merged radix-2^n arrangement needs
   exactly ``(N/2) * log2(N)`` multiplications (12 for N = 8) while a
   conventional radix-2 with standalone pre-processing needs more.

2. **Pipeline multiplier counting** — hardware multipliers in a P-lane
   MDC pipeline for each radix-2^k design, in NTT and FFT modes
   (Fig. 4b).  The paper's headline: only radix-2^n keeps the merged
   twiddle pattern consistent across stages, reaching the theoretical
   minimum ``P/2 * log2(N)`` modular multipliers; radix-2 / radix-2^2
   designs insert extra rotator columns where the ψ-merge pattern breaks.

   Modeling assumption (the paper's counting is not published): each
   misaligned group boundary costs one extra column of ``P/2`` modular
   multipliers in NTT mode; in FFT mode intra-group rotations are trivial
   or constant (cheap CSD rotators) while group boundaries need general
   complex rotators of 4 real multipliers each (Eq. 12).  EXPERIMENTS.md
   compares the resulting reduction percentages against the paper's
   29.7 % / 22.3 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import bit_reverse, ilog2

__all__ = [
    "sfg_multiplications_merged",
    "sfg_multiplications_unmerged",
    "MultiplierCount",
    "pipeline_multipliers",
    "design_space",
    "reduction_vs",
]


def sfg_multiplications_merged(degree: int) -> int:
    """Twiddle multiplications in the fully ψ-merged negacyclic CT NTT.

    Every butterfly carries a merged factor ``psi^bitrev(j)`` with j >= 1,
    none of which is ±1, so the count is exactly ``(N/2) * log2(N)`` —
    the paper's "12 multiplications" for the 8-point radix-2^n example.
    """
    log_n = ilog2(degree)
    count = 0
    for s in range(log_n):
        m = 1 << s
        butterflies_per_block = degree // (2 * m)
        for i in range(m):
            exponent = bit_reverse(m + i, log_n)  # psi exponent, in [1, N)
            # Merged exponents are odd multiples of N/(2m); psi^0 = 1 and
            # psi^N = -1 never occur, so every butterfly multiplies.
            if exponent % degree != 0:
                count += butterflies_per_block
    return count


def sfg_multiplications_unmerged(degree: int, count_negation: bool = False) -> int:
    """Twiddle multiplications for cyclic CT NTT + standalone pre-processing.

    The conventional radix-2 arrangement: first scale all N inputs by
    ``psi^i`` (N-1 non-trivial products, since psi^0 = 1), then run a
    cyclic NTT whose stage twiddles are ``omega^bitrev(j)`` with
    ``omega = psi^2``.  Factors equal to 1 are free; -1 is a negation and
    only counts when ``count_negation`` is set (a modular negation is an
    adder, not a multiplier).
    """
    log_n = ilog2(degree)
    preprocessing = degree - 1
    count = preprocessing
    half = degree // 2  # omega^half = -1
    for s in range(log_n):
        m = 1 << s
        butterflies_per_block = degree // (2 * m)
        for i in range(m):
            # Cyclic twiddle table uses omega^bitrev(m+i, log_n) with
            # omega = psi^2 of order N.
            omega_exp = bit_reverse(m + i, log_n) % degree
            if omega_exp == 0:
                continue  # multiply by 1
            if omega_exp == half and not count_negation:
                continue  # multiply by -1: negation only
            count += butterflies_per_block
    return count


@dataclass(frozen=True)
class MultiplierCount:
    """Hardware multiplier tally for one pipelined design point.

    Attributes:
        name: design label ("radix-2", "radix-2^2", …, "radix-2^n").
        radix_log: k of radix-2^k (log2(N) for the radix-2^n design).
        butterfly_multipliers: modular/real multipliers inside stages.
        extra_multipliers: pattern-break / pre-processing columns.
        pattern_consistent: True when the merged ψ pattern holds at every
            stage (the paper: true only for radix-2^n).
    """

    name: str
    radix_log: int
    butterfly_multipliers: int
    extra_multipliers: int
    pattern_consistent: bool

    @property
    def total(self) -> int:
        return self.butterfly_multipliers + self.extra_multipliers


def pipeline_multipliers(
    degree: int, lanes: int, radix_log: int, mode: str = "ntt"
) -> MultiplierCount:
    """Multipliers in a P-lane MDC pipeline for a radix-2^k design.

    NTT mode: every stage needs ``P/2`` modular multipliers (merged
    twiddles are never trivial); each group boundary where the merged
    pattern misaligns adds an extra rotator column.  Within a radix-2^k
    group a fraction ``1/2^k`` of the boundary rotations coincide with the
    merged ψ progression and are absorbed for free, so a boundary costs
    ``(P/2) * (1 - 2^-k)`` multipliers.  The radix-2^n design
    (``radix_log == log2 N``) has no boundaries — the paper's minimum
    ``P/2 * log2 N``.

    FFT mode: the CKKS *special* FFT (powers-of-5 canonical-embedding
    ordering) has non-classical twiddles at every stage, so the same
    boundary-misalignment structure applies; each complex rotator costs
    4 real multipliers (Eq. 12).  Counted in real multipliers, an FFT
    design is exactly 4x its NTT counterpart — which is what makes the
    RFE's 4-modular-multipliers-per-FP-complex-multiplier
    reconfigurability lossless.
    """
    log_n = ilog2(degree)
    if radix_log < 1 or radix_log > log_n:
        raise ValueError(f"radix_log must be in [1, {log_n}], got {radix_log}")
    if lanes < 2 or lanes % 2:
        raise ValueError("lanes must be an even count of streaming paths")
    groups = -(-log_n // radix_log)  # ceil
    boundaries = groups - 1
    is_full = radix_log == log_n
    name = "radix-2^n" if is_full else (f"radix-2^{radix_log}" if radix_log > 1 else "radix-2")

    if mode == "ntt":
        butterfly = (lanes // 2) * log_n
        misaligned_fraction = 1.0 - 2.0 ** (-radix_log)
        extra = round(boundaries * (lanes // 2) * misaligned_fraction)
        return MultiplierCount(
            name=name,
            radix_log=radix_log,
            butterfly_multipliers=butterfly,
            extra_multipliers=extra,
            pattern_consistent=is_full,
        )
    if mode == "fft":
        rotator_cost = 4  # real multipliers per complex rotator (Eq. 12)
        butterfly = (lanes // 2) * log_n * rotator_cost
        misaligned_fraction = 1.0 - 2.0 ** (-radix_log)
        extra = round(boundaries * (lanes // 2) * misaligned_fraction) * rotator_cost
        return MultiplierCount(
            name=name,
            radix_log=radix_log,
            butterfly_multipliers=butterfly,
            extra_multipliers=extra,
            pattern_consistent=is_full,
        )
    raise ValueError(f"mode must be 'ntt' or 'fft', got {mode!r}")


def design_space(degree: int, lanes: int, mode: str = "ntt") -> list[MultiplierCount]:
    """All radix-2^k design points for one degree — the Fig. 4(b) sweep."""
    log_n = ilog2(degree)
    return [pipeline_multipliers(degree, lanes, k, mode) for k in range(1, log_n + 1)]


def reduction_vs(degree: int, lanes: int, baseline_log: int, mode: str = "ntt") -> float:
    """Fractional multiplier reduction of radix-2^n vs a baseline radix.

    The paper's 29.7 % (vs radix-2) and 22.3 % (vs radix-2^2) numbers for
    NTT; our model's values are compared in EXPERIMENTS.md.
    """
    log_n = ilog2(degree)
    best = pipeline_multipliers(degree, lanes, log_n, mode).total
    base = pipeline_multipliers(degree, lanes, baseline_log, mode).total
    return 1.0 - best / base
