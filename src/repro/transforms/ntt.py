"""Negacyclic number-theoretic transform with merged ψ pre/post-processing.

CKKS polynomials live in ``Z_q[X] / (X^N + 1)``; multiplying them needs the
*negacyclic* NTT, which classically requires pre-scaling inputs by powers of
a 2N-th root ψ (Eq. 2) and post-scaling by ψ^{-k} (Eq. 3).  Following the
merging technique the paper cites ([30] Roy et al., [27] Pöppelmann et al.),
the ψ powers are folded into the per-stage butterfly twiddles so no separate
pre/post multiplier columns are needed — the property that lets the RFE hit
the theoretical minimum of ``P/2 * log2 N`` pipeline multipliers.

The kernels are fully vectorized and reducer-aware: every butterfly
multiply goes through a pluggable :class:`~repro.nums.kernels.ReducerKernel`
(Barrett by default — no integer division on the hot path), with the
twiddle tables held in the backend's precomputed form (Montgomery domain
for the ``montgomery`` backend, mirroring hardware that keeps operands in
the domain across pipeline stages).  Butterfly sums use *lazy reduction*:
stage outputs live in ``[0, 2q)`` and are renormalized once at the top of
the next stage — one conditional subtract per element per stage instead of
a full reduction per operation.

Two transform front-ends share the tables:

* :class:`NttContext` — one (degree, modulus) pair, the classic per-limb
  API, with a process-level cache (:meth:`NttContext.cached`) so repeated
  ``RnsBasis``/key-generation paths never rebuild twiddles;
* :class:`BatchNtt` — all limbs of an RNS basis at once as one
  ``(L, N)`` matrix op per stage with per-row modulus broadcasting, the
  software analogue of the accelerator streaming all lanes in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import ClassVar

import numpy as np

from repro.nums.kernels import ReducerKernel, _csub, default_backend_name, kernel_for_modulus
from repro.nums.modular import mod_inv, nth_root_of_unity
from repro.utils.bitops import bit_reverse, ilog2

__all__ = ["NttContext", "BatchNtt", "galois_permutation", "negacyclic_mul_naive"]


@lru_cache(maxsize=None)
def galois_permutation(degree: int, galois_elt: int) -> np.ndarray:
    """Gather indices applying ``X -> X^k`` directly on NTT-domain data.

    The merged negacyclic NTT leaves slot ``i`` holding the evaluation at
    ``psi^{2 br(i) + 1}`` (bit-reversed order).  An odd Galois element
    permutes the odd powers of ``psi`` among themselves, so the
    automorphism acts on evaluation data as a *pure index permutation* —
    no sign flips and, crucially, no NTT round trip.  The returned ``src``
    satisfies ``ntt(automorphism(a, k)) == ntt(a)[..., src]`` for every
    limb (the table depends only on the degree, not the modulus).
    """
    log_n = ilog2(degree)
    if galois_elt % 2 == 0:
        raise ValueError("Galois elements must be odd")
    two_n = 2 * degree
    src = np.empty(degree, dtype=np.intp)
    for i in range(degree):
        exponent = (galois_elt * (2 * bit_reverse(i, log_n) + 1)) % two_n
        src[i] = bit_reverse((exponent - 1) // 2, log_n)
    src.setflags(write=False)
    return src


def _canonicalize(a: np.ndarray, q) -> np.ndarray:
    """Bring an arbitrary uint64 array into [0, q) (cheap when already there)."""
    if int(a.max(initial=0)) >= int(np.max(q)):
        return a % np.asarray(q, dtype=np.uint64)
    return a


@dataclass(frozen=True)
class NttContext:
    """Precomputed tables for negacyclic NTT/INTT of one (degree, prime) pair.

    Attributes:
        degree: polynomial degree N (power of two).
        modulus: NTT-friendly prime q with 2N | q-1.
        psi: primitive 2N-th root of unity mod q.
        psi_rev: merged Cooley–Tukey twiddles, ``psi^{bitrev(j)}``.
        psi_inv_rev: merged Gentleman–Sande twiddles for the inverse.
        n_inv: ``N^{-1} mod q`` folded into the inverse's last stage.
        backend: reducer-backend name the butterfly kernels run on.
        kernel: the bound :class:`ReducerKernel` instance.
        psi_pre / psi_inv_pre / n_inv_pre: twiddles in the backend's
            precomputed constant form (see ``ReducerKernel.pre``).
    """

    degree: int
    modulus: int
    psi: int
    psi_rev: np.ndarray
    psi_inv_rev: np.ndarray
    n_inv: int
    backend: str = field(default="", compare=False)
    kernel: ReducerKernel = field(default=None, repr=False, compare=False)
    psi_pre: np.ndarray = field(default=None, repr=False, compare=False)
    psi_inv_pre: np.ndarray = field(default=None, repr=False, compare=False)
    n_inv_pre: np.ndarray = field(default=None, repr=False, compare=False)

    @classmethod
    def create(
        cls, degree: int, modulus: int, psi: int | None = None, backend: str | None = None
    ) -> "NttContext":
        """Build tables; derives ψ from the field structure unless given."""
        log_n = ilog2(degree)
        if (modulus - 1) % (2 * degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for degree {degree}: "
                f"2N must divide q-1"
            )
        if psi is None:
            psi = nth_root_of_unity(2 * degree, modulus)
        elif pow(psi, 2 * degree, modulus) != 1 or pow(psi, degree, modulus) == 1:
            raise ValueError("psi is not a primitive 2N-th root of unity")

        psi_inv = mod_inv(psi, modulus)
        psi_rev = np.zeros(degree, dtype=np.uint64)
        psi_inv_rev = np.zeros(degree, dtype=np.uint64)
        power = 1
        power_inv = 1
        # psi_rev[bitrev(i)] = psi^i — the merged twiddle layout of [30].
        for i in range(degree):
            j = bit_reverse(i, log_n)
            psi_rev[j] = power
            psi_inv_rev[j] = power_inv
            power = power * psi % modulus
            power_inv = power_inv * psi_inv % modulus
        backend_name = backend or default_backend_name()
        kernel = kernel_for_modulus(modulus, backend_name)
        n_inv = mod_inv(degree, modulus)
        return cls(
            degree=degree,
            modulus=modulus,
            psi=psi,
            psi_rev=psi_rev,
            psi_inv_rev=psi_inv_rev,
            n_inv=n_inv,
            backend=backend_name,
            kernel=kernel,
            psi_pre=kernel.pre(psi_rev),
            psi_inv_pre=kernel.pre(psi_inv_rev),
            n_inv_pre=kernel.pre(np.uint64(n_inv)),
        )

    # Process-level context cache: twiddle generation is O(N) Python work
    # per (degree, prime), and RNS bases / key generators ask for the same
    # pairs over and over.
    _CACHE: ClassVar[dict[tuple[int, int, str], "NttContext"]] = {}

    @classmethod
    def cached(cls, degree: int, modulus: int, backend: str | None = None) -> "NttContext":
        """Shared context for a (degree, modulus) pair under a backend."""
        key = (degree, modulus, backend or default_backend_name())
        ctx = cls._CACHE.get(key)
        if ctx is None:
            ctx = cls.create(degree, modulus, backend=key[2])
            cls._CACHE[key] = ctx
        return ctx

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation domain (merged negacyclic CT NTT).

        Input in natural order, output in bit-reversed order; the inverse
        consumes that order directly, so no explicit permutation is needed
        for multiply-round-trips (exactly how the streaming hardware chains
        NTT -> pointwise -> INTT).

        Lazy reduction: intermediate values live in [0, 2q) and are pulled
        back below q once per stage (a conditional subtract), not per op.
        """
        n, q = self.degree, np.uint64(self.modulus)
        a = np.asarray(coeffs, dtype=np.uint64)
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {a.shape}")
        a = _canonicalize(a, q).copy()
        kern = self.kernel
        m = 1
        t = n
        while m < n:
            t //= 2
            view = a.reshape(m, 2, t)
            factors = self.psi_pre[..., m : 2 * m, None]
            u = _csub(view[:, 0, :], q)
            v = kern.mul_pre(_csub(view[:, 1, :], q), factors)
            view[:, 0, :] = u + v
            view[:, 1, :] = u + (q - v)
            m *= 2
        return _csub(a, q)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient domain (merged GS INTT, scales by 1/N)."""
        n, q = self.degree, np.uint64(self.modulus)
        a = np.asarray(evals, dtype=np.uint64)
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {a.shape}")
        a = _canonicalize(a, q).copy()
        kern = self.kernel
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2, t)
            factors = self.psi_inv_pre[..., h : 2 * h, None]
            u = _csub(view[:, 0, :], q)
            v = _csub(view[:, 1, :], q)
            view[:, 0, :] = u + v
            view[:, 1, :] = kern.mul_pre(kern.sub(u, v), factors)
            t *= 2
            m = h
        return kern.mul_pre(_csub(a, q), self.n_inv_pre)

    # ------------------------------------------------------------------
    # Convenience operations in the evaluation domain
    # ------------------------------------------------------------------

    def pointwise_mul(self, a_eval: np.ndarray, b_eval: np.ndarray) -> np.ndarray:
        """Hadamard product of two evaluation-domain polynomials."""
        q = np.uint64(self.modulus)
        a = _canonicalize(np.asarray(a_eval, dtype=np.uint64), q)
        b = _canonicalize(np.asarray(b_eval, dtype=np.uint64), q)
        return self.kernel.mul(a, b)

    def negacyclic_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full polynomial product in Z_q[X]/(X^N+1) via NTT round trip."""
        return self.inverse(self.pointwise_mul(self.forward(a), self.forward(b)))


@dataclass(frozen=True)
class BatchNtt:
    """All limbs of an RNS prefix transformed as one matrix per stage.

    Stacks the per-limb merged twiddles into ``(L, N)`` tables and runs
    each butterfly stage as a single broadcasted kernel call over the
    whole residue matrix — one numpy dispatch per stage for *all* limbs,
    with per-row moduli broadcast from an ``(L, 1, 1)`` column.  Results
    are bit-identical to looping :meth:`NttContext.forward` limb by limb.
    """

    degree: int
    moduli: tuple[int, ...]
    backend: str
    kernel: ReducerKernel = field(repr=False, compare=False)
    psi_pre: np.ndarray = field(repr=False, compare=False)
    psi_inv_pre: np.ndarray = field(repr=False, compare=False)
    n_inv_pre: np.ndarray = field(repr=False, compare=False)

    @classmethod
    def create(
        cls, degree: int, moduli: tuple[int, ...], backend: str | None = None
    ) -> "BatchNtt":
        """Stack (cached) per-limb twiddles and precompute batched tables.

        Tables are shaped ``(..., L, 1, N)`` — the trailing singleton keeps
        the per-row moduli column ``(L, 1, 1)`` broadcasting against the
        3-D ``(L, m, t)`` stage views; a leading axis (if any) carries the
        backend's precomputed companions (e.g. Barrett's Shoup pieces).
        """
        backend_name = backend or default_backend_name()
        contexts = [NttContext.cached(degree, q, backend_name) for q in moduli]
        q_col = np.array(moduli, dtype=np.uint64).reshape(-1, 1, 1)
        kernel = type(contexts[0].kernel)(q_col)
        psi = np.stack([c.psi_rev for c in contexts]).reshape(-1, 1, degree)
        psi_inv = np.stack([c.psi_inv_rev for c in contexts]).reshape(-1, 1, degree)
        n_inv = np.array([c.n_inv for c in contexts], dtype=np.uint64).reshape(-1, 1, 1)
        return cls(
            degree=degree,
            moduli=tuple(moduli),
            backend=backend_name,
            kernel=kernel,
            psi_pre=kernel.pre(psi),
            psi_inv_pre=kernel.pre(psi_inv),
            n_inv_pre=kernel.pre(n_inv),
        )

    @property
    def num_limbs(self) -> int:
        return len(self.moduli)

    def _q_col(self) -> np.ndarray:
        return self.kernel.q

    def forward(self, mat: np.ndarray) -> np.ndarray:
        """``(..., L, N)`` coefficient rows -> evaluation rows, one dispatch.

        Leading batch axes are flattened so a stacked digit tensor — e.g.
        key switching's ``(L, L, N)`` matrix of broadcast digits — runs
        through the same per-stage kernel calls as a single polynomial:
        one vectorized dispatch per butterfly stage covering *every* row.
        """
        shape = self._check(mat)
        lcount, n = self.num_limbs, self.degree
        q = self._q_col()
        a = mat.astype(np.uint64, copy=True).reshape(-1, lcount, n)
        batch = a.shape[0]
        kern = self.kernel
        m = 1
        t = n
        while m < n:
            t //= 2
            view = a.reshape(batch, lcount, m, 2, t)
            factors = self.psi_pre[..., None, :, 0, m : 2 * m, None]
            u = _csub(view[:, :, :, 0, :], q)
            v = kern.mul_pre(_csub(view[:, :, :, 1, :], q), factors)
            view[:, :, :, 0, :] = u + v
            view[:, :, :, 1, :] = u + (q - v)
            m *= 2
        return _csub(a.reshape(batch, lcount, 1, n), q).reshape(shape)

    def inverse(self, mat: np.ndarray) -> np.ndarray:
        """``(..., L, N)`` evaluation rows -> coefficient rows, one dispatch."""
        shape = self._check(mat)
        lcount, n = self.num_limbs, self.degree
        q = self._q_col()
        a = mat.astype(np.uint64, copy=True).reshape(-1, lcount, n)
        batch = a.shape[0]
        kern = self.kernel
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(batch, lcount, h, 2, t)
            factors = self.psi_inv_pre[..., None, :, 0, h : 2 * h, None]
            u = _csub(view[:, :, :, 0, :], q)
            v = _csub(view[:, :, :, 1, :], q)
            view[:, :, :, 0, :] = u + v
            view[:, :, :, 1, :] = kern.mul_pre(kern.sub(u, v), factors)
            t *= 2
            m = h
        out = _csub(a.reshape(batch, lcount, 1, n), q)
        return kern.mul_pre(out, self.n_inv_pre).reshape(shape)

    def _check(self, mat: np.ndarray) -> tuple[int, ...]:
        if mat.ndim < 2 or mat.shape[-2:] != (self.num_limbs, self.degree):
            raise ValueError(
                f"expected (..., {self.num_limbs}, {self.degree}) matrix, "
                f"got {mat.shape}"
            )
        return mat.shape


def negacyclic_mul_naive(a, b, modulus: int) -> np.ndarray:
    """Schoolbook negacyclic product — the O(N^2) oracle used by tests.

    Works on exact Python ints so there is no overflow for any modulus.
    """
    a = [int(x) % modulus for x in a]
    b = [int(x) % modulus for x in b]
    n = len(a)
    if len(b) != n:
        raise ValueError("length mismatch")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return np.array([x % modulus for x in out], dtype=np.uint64)
