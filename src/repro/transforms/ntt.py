"""Negacyclic number-theoretic transform with merged ψ pre/post-processing.

CKKS polynomials live in ``Z_q[X] / (X^N + 1)``; multiplying them needs the
*negacyclic* NTT, which classically requires pre-scaling inputs by powers of
a 2N-th root ψ (Eq. 2) and post-scaling by ψ^{-k} (Eq. 3).  Following the
merging technique the paper cites ([30] Roy et al., [27] Pöppelmann et al.),
the ψ powers are folded into the per-stage butterfly twiddles so no separate
pre/post multiplier columns are needed — the property that lets the RFE hit
the theoretical minimum of ``P/2 * log2 N`` pipeline multipliers.

The kernels are fully vectorized: each stage reshapes the coefficient array
into ``(blocks, 2, half)`` and applies one broadcasted modular multiply,
mirroring one pipeline stage of a PNL.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nums.modular import mod_inv, mulmod_vec, nth_root_of_unity
from repro.utils.bitops import bit_reverse, ilog2

__all__ = ["NttContext", "negacyclic_mul_naive"]


@dataclass(frozen=True)
class NttContext:
    """Precomputed tables for negacyclic NTT/INTT of one (degree, prime) pair.

    Attributes:
        degree: polynomial degree N (power of two).
        modulus: NTT-friendly prime q with 2N | q-1.
        psi: primitive 2N-th root of unity mod q.
        psi_rev: merged Cooley–Tukey twiddles, ``psi^{bitrev(j)}``.
        psi_inv_rev: merged Gentleman–Sande twiddles for the inverse.
        n_inv: ``N^{-1} mod q`` folded into the inverse's last stage.
    """

    degree: int
    modulus: int
    psi: int
    psi_rev: np.ndarray
    psi_inv_rev: np.ndarray
    n_inv: int

    @classmethod
    def create(cls, degree: int, modulus: int, psi: int | None = None) -> "NttContext":
        """Build tables; derives ψ from the field structure unless given."""
        log_n = ilog2(degree)
        if (modulus - 1) % (2 * degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for degree {degree}: "
                f"2N must divide q-1"
            )
        if psi is None:
            psi = nth_root_of_unity(2 * degree, modulus)
        elif pow(psi, 2 * degree, modulus) != 1 or pow(psi, degree, modulus) == 1:
            raise ValueError("psi is not a primitive 2N-th root of unity")

        psi_inv = mod_inv(psi, modulus)
        psi_rev = np.zeros(degree, dtype=np.uint64)
        psi_inv_rev = np.zeros(degree, dtype=np.uint64)
        power = 1
        power_inv = 1
        # psi_rev[bitrev(i)] = psi^i — the merged twiddle layout of [30].
        for i in range(degree):
            j = bit_reverse(i, log_n)
            psi_rev[j] = power
            psi_inv_rev[j] = power_inv
            power = power * psi % modulus
            power_inv = power_inv * psi_inv % modulus
        return cls(
            degree=degree,
            modulus=modulus,
            psi=psi,
            psi_rev=psi_rev,
            psi_inv_rev=psi_inv_rev,
            n_inv=mod_inv(degree, modulus),
        )

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation domain (merged negacyclic CT NTT).

        Input in natural order, output in bit-reversed order; the inverse
        consumes that order directly, so no explicit permutation is needed
        for multiply-round-trips (exactly how the streaming hardware chains
        NTT -> pointwise -> INTT).
        """
        n, q = self.degree, self.modulus
        a = np.asarray(coeffs, dtype=np.uint64) % np.uint64(q)
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {a.shape}")
        m = 1
        t = n
        while m < n:
            t //= 2
            view = a.reshape(m, 2, t)
            factors = self.psi_rev[m : 2 * m].reshape(m, 1)
            u = view[:, 0, :].copy()
            v = mulmod_vec(view[:, 1, :], factors, q)
            view[:, 0, :] = (u + v) % np.uint64(q)
            view[:, 1, :] = (u + np.uint64(q) - v) % np.uint64(q)
            m *= 2
        return a

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient domain (merged GS INTT, scales by 1/N)."""
        n, q = self.degree, self.modulus
        a = np.asarray(evals, dtype=np.uint64) % np.uint64(q)
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {a.shape}")
        t = 1
        m = n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2, t)
            factors = self.psi_inv_rev[h : 2 * h].reshape(h, 1)
            u = view[:, 0, :].copy()
            v = view[:, 1, :].copy()
            view[:, 0, :] = (u + v) % np.uint64(q)
            view[:, 1, :] = mulmod_vec((u + np.uint64(q) - v) % np.uint64(q), factors, q)
            t *= 2
            m = h
        return mulmod_vec(a, self.n_inv, q)

    # ------------------------------------------------------------------
    # Convenience operations in the evaluation domain
    # ------------------------------------------------------------------

    def pointwise_mul(self, a_eval: np.ndarray, b_eval: np.ndarray) -> np.ndarray:
        """Hadamard product of two evaluation-domain polynomials."""
        return mulmod_vec(a_eval, b_eval, self.modulus)

    def negacyclic_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full polynomial product in Z_q[X]/(X^N+1) via NTT round trip."""
        return self.inverse(self.pointwise_mul(self.forward(a), self.forward(b)))


def negacyclic_mul_naive(a, b, modulus: int) -> np.ndarray:
    """Schoolbook negacyclic product — the O(N^2) oracle used by tests.

    Works on exact Python ints so there is no overflow for any modulus.
    """
    a = [int(x) % modulus for x in a]
    b = [int(x) % modulus for x in b]
    n = len(a)
    if len(b) != n:
        raise ValueError("length mismatch")
    out = [0] * n
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            k = i + j
            term = ai * bj
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return np.array([x % modulus for x in out], dtype=np.uint64)
