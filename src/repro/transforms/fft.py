"""The CKKS canonical-embedding "special" FFT (encode/decode transform).

CKKS encodes a vector of ``N/2`` complex slots into a real polynomial of
degree ``N`` by inverting the canonical embedding restricted to one orbit of
roots: slot ``j`` is the evaluation of the message polynomial at
``zeta^{5^j}`` with ``zeta = exp(i*pi/N)`` a primitive 2N-th root of unity.
The powers-of-five indexing makes the transform close under conjugation so
that real polynomials map to conjugate-symmetric slot vectors.

The kernels below are the iterative Cooley–Tukey forms used by Lattigo and
SEAL (the paper's CPU baseline runs Lattigo), written stage-wise so a
:class:`repro.transforms.fp_custom.FloatFormat` can re-quantize after every
butterfly stage — exactly how the RFE's FP55 datapath accumulates rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transforms.fp_custom import FP64, FloatFormat
from repro.utils.bitops import bit_reverse_indices, ilog2

__all__ = ["SpecialFft", "embedding_matrix"]


@dataclass(frozen=True)
class SpecialFft:
    """Precomputed tables for the CKKS special FFT over ``slots`` lanes.

    Attributes:
        slots: number of complex slots (ring degree / 2), a power of two.
        fmt: floating-point datapath format; quantization is applied after
            every butterfly stage when not native FP64.
        roots: the ``M = 4 * slots`` complex roots ``exp(2*pi*i*k / M)``.
        rot_group: ``5^j mod M`` for ``j`` in ``[0, slots)``.
    """

    slots: int
    fmt: FloatFormat
    roots: np.ndarray
    rot_group: np.ndarray

    @classmethod
    def create(cls, slots: int, fmt: FloatFormat = FP64) -> "SpecialFft":
        ilog2(slots)  # validates power of two
        m = 4 * slots
        roots = np.exp(2j * np.pi * np.arange(m) / m)
        rot_group = np.empty(slots, dtype=np.int64)
        five = 1
        for j in range(slots):
            rot_group[j] = five
            five = (five * 5) % m
        return cls(slots=slots, fmt=fmt, roots=fmt.quantize(roots), rot_group=rot_group)

    @property
    def m(self) -> int:
        """The root-of-unity order M = 4 * slots = 2 * ring degree."""
        return 4 * self.slots

    # ------------------------------------------------------------------
    # Forward (decode direction): coefficients-ish -> slot values
    # ------------------------------------------------------------------

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Special FFT: evaluate at the ``zeta^{5^j}`` orbit (decode path).

        Input and output are length-``slots`` complex vectors; input is in
        the "folded coefficient" layout produced by :meth:`inverse`.
        """
        v = self._checked(values)
        n = self.slots
        v = v[bit_reverse_indices(n)]
        length = 2
        while length <= n:
            half = length // 2
            quad = length * 4
            gap = self.m // quad
            idx = (self.rot_group[:half] % quad) * gap
            tw = self.roots[idx]  # shape (half,), shared across blocks
            blocks = v.reshape(n // length, length)
            u = blocks[:, :half].copy()  # copy: the next line overwrites it
            w = blocks[:, half:] * tw
            blocks[:, :half] = u + w
            blocks[:, half:] = u - w
            v = self.fmt.quantize(blocks).reshape(n)
            length *= 2
        return v

    # ------------------------------------------------------------------
    # Inverse (encode direction): slot values -> folded coefficients
    # ------------------------------------------------------------------

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Special IFFT: slot values -> folded coefficients (encode path)."""
        v = self._checked(values)
        n = self.slots
        length = n
        while length >= 2:
            half = length // 2
            quad = length * 4
            gap = self.m // quad
            idx = (quad - (self.rot_group[:half] % quad)) * gap
            tw = self.roots[idx]
            blocks = v.reshape(n // length, length)
            u = blocks[:, :half] + blocks[:, half:]
            w = (blocks[:, :half] - blocks[:, half:]) * tw
            blocks[:, :half] = u
            blocks[:, half:] = w
            v = self.fmt.quantize(blocks).reshape(n)
            length //= 2
        v = v[bit_reverse_indices(n)]
        return self.fmt.quantize(v / n)

    def _checked(self, values: np.ndarray) -> np.ndarray:
        v = np.array(values, dtype=np.complex128)
        if v.shape != (self.slots,):
            raise ValueError(f"expected shape ({self.slots},), got {v.shape}")
        return v


def embedding_matrix(slots: int) -> np.ndarray:
    """Dense canonical-embedding matrix — the O(N^2) oracle for tests.

    Row ``j`` evaluates a folded-coefficient vector at ``zeta^{5^j}``:
    ``E[j, k] = zeta^{5^j * k}`` with ``zeta = exp(2*pi*i / M)`` raised to
    the same index arithmetic the fast kernels use, so
    ``forward(v) == E @ v`` exactly (up to float error).
    """
    m = 4 * slots
    zeta = np.exp(2j * np.pi / m)
    rot = np.empty(slots, dtype=np.int64)
    five = 1
    for j in range(slots):
        rot[j] = five
        five = (five * 5) % m
    k = np.arange(slots)
    return zeta ** (np.outer(rot, k) % m)
