"""Fourier-like transforms: negacyclic NTT, CKKS special FFT, and the
hardware-facing twiddle/dataflow models.

* :mod:`repro.transforms.ntt` — merged-ψ negacyclic NTT/INTT kernels;
* :mod:`repro.transforms.fft` — canonical-embedding special FFT/IFFT with a
  pluggable floating-point datapath;
* :mod:`repro.transforms.fp_custom` — FP55-style reduced-mantissa formats;
* :mod:`repro.transforms.twiddle` — unified on-the-fly twiddle generation
  and its memory accounting (Section IV-B);
* :mod:`repro.transforms.dataflow` — multiplier-count models for pipelined
  radix-2^k designs (Fig. 4).
"""

from repro.transforms.dataflow import (
    MultiplierCount,
    design_space,
    pipeline_multipliers,
    reduction_vs,
    sfg_multiplications_merged,
    sfg_multiplications_unmerged,
)
from repro.transforms.fft import SpecialFft, embedding_matrix
from repro.transforms.fp_custom import FP32_LIKE, FP55, FP64, FloatFormat
from repro.transforms.ntt import BatchNtt, NttContext, negacyclic_mul_naive
from repro.transforms.twiddle import (
    OnTheFlyTwiddleGenerator,
    StageSeed,
    TwiddleMemoryModel,
)

__all__ = [
    "BatchNtt",
    "FP32_LIKE",
    "FP55",
    "FP64",
    "FloatFormat",
    "MultiplierCount",
    "NttContext",
    "OnTheFlyTwiddleGenerator",
    "SpecialFft",
    "StageSeed",
    "TwiddleMemoryModel",
    "design_space",
    "embedding_matrix",
    "negacyclic_mul_naive",
    "pipeline_multipliers",
    "reduction_vs",
    "sfg_multiplications_merged",
    "sfg_multiplications_unmerged",
]
