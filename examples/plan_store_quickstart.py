"""Plan store quickstart: compile once, save, reload cold, serve shipped.

The loop a serving fleet runs (see README "Plan store" and
docs/formats.md for the EPL1/PCS1 artifact formats):

1. trace + compile a CKKS program and let an installed ``PlanStore``
   persist the artifact automatically;
2. simulate a fresh process (cleared in-memory plan cache): the same
   ``compile_fn`` call now resolves to the on-disk artifact — the
   optimizer never runs;
3. serve through a worker pool in ``ship_plan`` mode, where each worker
   deserializes the EPL1 bytes instead of inheriting the compiled plan
   via fork — the cross-machine path;
4. assert every path's outputs are byte-identical.

Run:  python examples/plan_store_quickstart.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a bare checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.ckks import CkksContext, toy_params
from repro.runtime import (
    CtSpec,
    PlanStore,
    ShardedExecutor,
    clear_plan_cache,
    compile_fn,
    plan_cache_info,
    serialize_plan,
    set_plan_store,
)


def assert_identical(got, want, what: str) -> None:
    for g, w in zip(got, want):
        assert g.scale == w.scale, f"{what}: scale diverged"
        for gp, wp in zip(g.parts, w.parts):
            assert np.array_equal(gp.data, wp.data), f"{what}: bits diverged"
    print(f"  {what}: byte-identical")


def main() -> None:
    ctx = CkksContext.create(toy_params(degree=256, num_primes=6), seed=11)
    rlk = ctx.relin_keys(levels=[6])
    gks = ctx.galois_keys([1, 2], levels=[6])

    def model(ev, x):
        s = ev.add(ev.rotate(x, 1, gks), ev.rotate(x, 2, gks))
        return ev.multiply_relin_rescale(s, s, rlk)

    spec = CtSpec(level=6, scale=ctx.params.scale)
    rng = np.random.default_rng(3)
    requests = [[ctx.encrypt(rng.uniform(-1, 1, ctx.params.slots))] for _ in range(4)]

    with tempfile.TemporaryDirectory() as store_dir:
        # --- 1. compile with a plan store installed: saved automatically
        set_plan_store(PlanStore(store_dir))
        plan = compile_fn(model, ctx.evaluator, [spec])
        reference = plan.run_batch(requests)
        store = PlanStore(store_dir)
        [key] = store.keys()
        blob = serialize_plan(plan)
        print(f"compiled: {plan.summary()}")
        print(f"saved artifact {key}.epl1 ({len(blob) / 1e3:.1f} kB serialized)")

        # --- 2. "fresh process": cold cache, same store -> disk hit
        clear_plan_cache()
        reloaded = compile_fn(model, ctx.evaluator, [spec])
        stats = plan_cache_info()
        assert stats["disk_hits"] == 1, stats
        print(f"cold-cache recompile became a disk hit: {stats}")
        assert_identical(reloaded.run_batch(requests)[0], reference[0],
                         "disk-loaded plan")

        # --- 3. or load an artifact directly, no tracing at all (the
        # .pcs1 sidecar supplies the constants on a fresh host)
        direct = store.load_path(store.path_for(key), ctx.evaluator)
        assert_identical(direct.run_batch(requests)[0], reference[0],
                         "load_path (no trace)")

        # --- 4. serve with workers that deserialize the shipped plan
        with ShardedExecutor(plan, 2, ship_plan=True) as pool:
            shipped = pool.run_batch(requests, timeout=120)
            assert pool.stats()["plan_wire"] or pool.stats()["inline"]
        for i, (got, want) in enumerate(zip(shipped, reference)):
            assert_identical(got, want, f"ship_plan worker replay #{i}")

        set_plan_store(None)
    print("plan store quickstart: all paths byte-identical")


if __name__ == "__main__":
    main()
