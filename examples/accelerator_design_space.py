"""Design-space exploration with the ABC-FHE hardware model.

Walks the paper's main hardware questions: how many lanes (Fig. 5b), what
on-chip generation buys (Fig. 6b), what the chip costs (Table II) and how
the multiplier choices shape the RFE (Table I / Fig. 4 / Fig. 6a).

Run:  python examples/accelerator_design_space.py
"""

from __future__ import annotations

from repro.accel import (
    ClientWorkload,
    abc_fhe,
    abc_fhe_base,
    abc_fhe_tf_gen,
    chip_area_breakdown,
    modmul_area_um2,
    rfe_area_progression,
    sweep_degree,
    sweep_lanes,
    TechnologyScaler,
)
from repro.transforms.dataflow import design_space


def lane_exploration(workload: ClientWorkload) -> None:
    print("— lanes per PNL (Fig. 5b): where does LPDDR5 cap the design?")
    for lanes, result in sweep_lanes(workload, abc_fhe()):
        bar = "#" * max(1, int(result.latency_seconds * 1e6 / 25))
        print(f"  P={lanes:3d}  {result.latency_seconds*1e6:8.1f} us  "
              f"{result.throughput_per_second:7.0f} ct/s  "
              f"[{result.bound_by:7s}] {bar}")
    print()


def generation_exploration() -> None:
    print("— on-chip generation (Fig. 6b): latency across ring degrees")
    configs = [
        ("Base   (all from DRAM)", abc_fhe_base()),
        ("TF_Gen (twiddles on-chip)", abc_fhe_tf_gen()),
        ("All    (PRNG + TF Gen)", abc_fhe()),
    ]
    for name, cfg in configs:
        cells = "  ".join(
            f"2^{n.bit_length()-1}={r.latency_seconds*1e3:6.3f}ms"
            for n, r in sweep_degree(cfg)
        )
        print(f"  {name:27s} {cells}")
    print()


def silicon_cost() -> None:
    print("— silicon cost (Tables I, II; Fig. 6a)")
    for algo in ("barrett", "montgomery", "ntt_friendly"):
        print(f"  modular multiplier ({algo:13s}): "
              f"{modmul_area_um2(36, algo):8.0f} um^2")
    bd = chip_area_breakdown()
    print(f"  full chip: {bd.total_area:.2f} mm^2, {bd.total_power:.2f} W at 28 nm")
    for node in (16, 7):
        s = TechnologyScaler(28, node)
        print(f"   scaled to {node:2d} nm: {s.scale_area(bd.total_area):5.2f} mm^2, "
              f"{s.scale_power(bd.total_power):4.2f} W")
    prog = rfe_area_progression()
    base = prog["baseline"]
    print("  RFE optimization progression (relative area):")
    for step, area in prog.items():
        print(f"    {step:16s} {area/base:5.3f}")
    print()


def radix_exploration() -> None:
    print("— radix design space (Fig. 4b, NTT mode, N = 2^16, P = 8)")
    for d in design_space(1 << 16, 8, "ntt")[:4] + [design_space(1 << 16, 8, "ntt")[-1]]:
        flag = " <- pattern-consistent (shipped)" if d.pattern_consistent else ""
        print(f"  {d.name:10s} {d.total:4d} multipliers{flag}")
    print()


def main() -> None:
    workload = ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)
    lane_exploration(workload)
    generation_exploration()
    silicon_cost()
    radix_exploration()


if __name__ == "__main__":
    main()
