"""Bootstrapping demo — why "bootstrappable parameters" matter.

The paper's whole premise: clients must encode/encrypt at large,
bootstrappable parameters so the *server* can refresh exhausted
ciphertexts.  This demo runs that refresh end to end on a reduced ring:

1. encrypt at level 1 (a ciphertext that cannot absorb any more work);
2. ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff;
3. come out at a higher level, compute on the refreshed ciphertext,
   and measure the bootstrapping precision (Fig. 3c's metric).

Run:  python examples/bootstrapping_demo.py   (~1 min)
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.ckks import Bootstrapper, BootstrapConfig, CkksContext, toy_params
from repro.ckks.bootstrap import measure_bootstrap_precision


def main() -> None:
    params = replace(
        toy_params(degree=128, num_primes=22), secret_hamming_weight=8
    )
    print("setting up context + bootstrapping keys "
          f"(N={params.degree}, L={params.num_primes}, sparse secret h=8)...")
    t0 = time.perf_counter()
    ctx = CkksContext.create(params, seed=2025)
    bs = Bootstrapper(
        ctx, BootstrapConfig(input_scale_bits=25, eval_mod_degree=63, wraps=7)
    )
    print(f"  done in {time.perf_counter() - t0:.1f} s")
    print(f"  level schedule: raise to {bs.top_level} -> CoeffToSlot -> "
          f"EvalMod (sine deg {bs.config.eval_mod_degree}) -> SlotToCoeff "
          f"-> output level {bs.output_level}\n")

    rng = np.random.default_rng(3)
    z = rng.uniform(-1, 1, ctx.params.slots)
    exhausted = ctx.encryptor.encrypt(
        ctx.encoder.encode(z, level=1, scale=bs.config.input_scale)
    )
    print(f"exhausted ciphertext: level {exhausted.level} "
          "(no multiplications left)")

    t0 = time.perf_counter()
    refreshed = bs.bootstrap(exhausted)
    dt = time.perf_counter() - t0
    err = np.max(np.abs(ctx.decrypt_decode(refreshed).real - z))
    print(f"bootstrapped in {dt:.1f} s -> level {refreshed.level}, "
          f"precision {-np.log2(err):.1f} bits")

    # The refreshed ciphertext supports further computation.
    squared_input = ctx.evaluator.add(refreshed, refreshed)
    err2 = np.max(np.abs(ctx.decrypt_decode(squared_input).real - 2 * z))
    print(f"compute after refresh (2x): error {err2:.2e}\n")

    print("bootstrapping precision across messages "
          "(the quantity Fig. 3c sweeps against the FP mantissa):")
    bits = measure_bootstrap_precision(ctx, bs, trials=2)
    print(f"  measured boot precision: {bits:.1f} bits "
          f"(paper threshold: 19.29; paper FP55 value: 23.39 at N=2^16 "
          "with a production-grade sine degree)")


if __name__ == "__main__":
    main()
