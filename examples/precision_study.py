"""Reproduce the FP55 datapath decision (Fig. 3c), then *use* it.

Sweeps the special-FFT mantissa width, finds the narrowest format clearing
the 19.29-bit precision threshold, and finally runs a real encrypt/decrypt
round trip through an encoder quantized to the paper's FP55 format to show
the end-to-end message error it implies.

Run:  python examples/precision_study.py
"""

from __future__ import annotations

import numpy as np

from repro.accel import calibration as cal
from repro.ckks import CkksContext, sweep_mantissa, toy_params
from repro.transforms.fp_custom import FP55

SLOTS = 1 << 12


def main() -> None:
    print(f"— mantissa sweep at {SLOTS} slots (paper Fig. 3c; threshold "
          f"{cal.BOOT_PRECISION_THRESHOLD} bits)")
    points = sweep_mantissa(SLOTS, range(20, 53, 4), fft_passes=3, trials=1)
    for p in points:
        marker = " <-- FP55 neighborhood" if p.mantissa_bits == 44 else ""
        bar = "*" * int(p.precision_bits)
        print(f"  mantissa {p.mantissa_bits:2d}: {p.precision_bits:5.1f} bits  {bar}{marker}")

    passing = [p for p in points if p.precision_bits >= cal.BOOT_PRECISION_THRESHOLD]
    print(f"  narrowest swept format above threshold: "
          f"{passing[0].mantissa_bits} mantissa bits")
    print(f"  (the paper lands on 43 bits = FP55 after including bootstrap "
          f"losses; its measured value there is {cal.BOOT_PRECISION_AT_FP55} bits)\n")

    print("— end-to-end check: CKKS round trip on an FP55-quantized encoder")
    params = toy_params(degree=1 << 10, num_primes=6, fp_format=FP55)
    ctx = CkksContext.create(params, seed=13)
    rng = np.random.default_rng(0)
    msg = rng.uniform(-1, 1, params.slots)
    out = ctx.decrypt_decode(ctx.encrypt(msg)).real
    err = float(np.max(np.abs(out - msg)))
    print(f"  max message error: {err:.3e} = 2^{np.log2(err):.1f}")
    print(f"  usable precision:  {-np.log2(err):.1f} bits "
          f"(>= {cal.BOOT_PRECISION_THRESHOLD} required) -> FP55 is sufficient")


if __name__ == "__main__":
    main()
