"""Private inference served end to end — the workload that motivates the paper.

Clients hold feature vectors; a server holds a tiny model
(linear layer -> square activation -> linear layer, the classic
CKKS-friendly network).  Clients encrypt, the server computes blind, the
clients decrypt.  The server side is written once against the shared
evaluator surface, traced, compiled to a cached
:class:`~repro.runtime.plan.ExecutionPlan`, and **served by the
multi-process engine** through the unified surface: ``serve(plan,
ServingConfig(...))`` opens a session whose worker pool runs in
``ship_plan`` mode — the compiled plan crosses to each worker as a
serialized ``EPL1`` artifact (constants resolved by fingerprint from
the inline ``PCS1`` payload, the cross-machine path; see
docs/formats.md) — and ``session.streaming()`` feeds it from a bounded
request queue so each client's encrypt -> evaluate -> decrypt pipeline
overlaps the others'.  Ciphertexts cross the worker boundary through the
wire formats of :mod:`repro.ckks.serialization`, and the streamed
outputs are asserted bit-identical to eager one-op-at-a-time evaluation.

Afterwards the accelerator model reports what each client phase would
cost on ABC-FHE vs a CPU at bootstrappable parameters — reproducing the
Fig. 1 story end to end — and the engine's own served queue is projected
onto the dual-RSC scheduling policies through the runtime bridge.

Run:  python examples/private_inference_client.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.accel import ClientSimulator, CpuModel, abc_fhe
from repro.accel import calibration as cal
from repro.ckks import CkksContext, toy_params
from repro.runtime import (
    CtSpec,
    ServingConfig,
    compile_fn,
    plan_to_workload,
    serve,
)

NUM_CLIENTS = 4
# ship_plan: workers rebuild the plan from its EPL1 bytes instead of
# inheriting the compiled object through fork.  fused: each worker
# replays through the arena-backed fused executor — same bits, fewer
# dispatches.  max_pending bounds the streaming admission queue.
SERVING = ServingConfig(num_workers=2, max_pending=3, ship_plan=True, fused=True)


def server_side_model(ev, ct, ctx, weights1, bias1, weights2, relin_keys):
    """Evaluate bias2-free  W2 * (W1 * x + b1)^2  against any evaluator.

    Element-wise weights keep the example compact (a diagonal linear
    layer); the structure — multiply_plain, add_plain, square with
    relinearize + double rescale — is exactly the CKKS inference recipe.
    ``ct`` may be a live ciphertext (eager) or a symbolic handle (traced):
    both carry the level/scale metadata the plaintext encodings need.
    """
    hidden = ev.multiply_plain(ct, weights1)
    hidden = ev.rescale(hidden, times=ctx.params.levels_per_multiplication)
    b1 = ctx.encoder.encode(bias1, level=hidden.level, scale=hidden.scale)
    hidden = ev.add_plain(hidden, b1)

    squared = ev.multiply_relin_rescale(hidden, hidden, relin_keys)

    w2 = ctx.encoder.encode(weights2, level=squared.level, scale=squared.scale)
    out = ev.multiply_plain(squared, w2)
    return ev.rescale(out, times=ctx.params.levels_per_multiplication)


def main() -> None:
    rng = np.random.default_rng(42)
    params = toy_params(degree=1 << 10, num_primes=10)
    ctx = CkksContext.create(params, seed=7)
    slots = params.slots

    features = [rng.uniform(-1, 1, slots) for _ in range(NUM_CLIENTS)]
    w1 = rng.uniform(-0.5, 0.5, slots)
    b1 = rng.uniform(-0.1, 0.1, slots)
    w2 = rng.uniform(-0.5, 0.5, slots)

    # --- server: trace + compile the model once ------------------------
    rlk = ctx.relin_keys(levels=[params.num_primes - 2])
    w1_pt = ctx.encode(w1)
    plan = compile_fn(
        lambda ev, x: server_side_model(ev, x, ctx, w1_pt, b1, w2, rlk),
        ctx.evaluator,
        [CtSpec(level=params.num_primes, scale=params.scale)],
    )
    print(plan.summary())
    fstats = plan.stats()
    print(f"  fused replay: {fstats['dispatch_count_batched']} node dispatches -> "
          f"{fstats['dispatch_count_fused']} fused "
          f"({fstats['fused_groups']} groups covering "
          f"{fstats['fused_nodes']} nodes); arena {fstats['arena_slots']} slots, "
          f"peak {fstats['arena_peak_bytes'] / 1024:.0f} KiB "
          f"[{fstats['array_backend']}]")

    # --- clients encrypt, then the streaming engine serves --------------
    # Each request: enter the bounded queue (backpressure at
    # SERVING.max_pending), evaluate on a forked worker, decrypt in the
    # thread pool — phases overlap across clients.
    cts = [ctx.encrypt(f) for f in features]

    def as_request(ct):
        return [ct]

    def decrypt(outputs):
        return ctx.decrypt_decode(outputs[0]).real, outputs[0]

    async def serve_all():
        session = serve(plan, SERVING, warm_inputs=[cts[0]])
        async with session.streaming() as server:
            served = await server.serve(cts, encrypt=as_request, decrypt=decrypt)
            return served, server.stats(), server.schedule_comparison()

    served, stats, policies = asyncio.run(serve_all())
    predictions = [pred for pred, _ in served]
    output_cts = [out_ct for _, out_ct in served]

    # The sharded, streamed path must be bit-identical to eager dispatch.
    eager = server_side_model(ctx.evaluator, cts[0], ctx, w1_pt, b1, w2, rlk)
    for i, (a, b) in enumerate(zip(eager.parts, output_cts[0].parts)):
        assert np.array_equal(a.data, b.data), f"part {i} diverged from eager"
    assert eager.scale == output_cts[0].scale
    print("  streamed sharded replay is bit-identical to eager evaluation")
    worst = 0.0
    for f, pred in zip(features, predictions):
        expected = w2 * (w1 * f + b1) ** 2
        worst = max(worst, float(np.max(np.abs(pred - expected))))

    latency = stats["latency"]
    print(f"private inference: W2 * (W1*x + b1)^2, {NUM_CLIENTS} clients, "
          f"{SERVING.num_workers} forked workers, queue bound "
          f"{SERVING.max_pending}")
    print(f"  ciphertext levels: {params.num_primes} -> {output_cts[0].level} "
          "(server consumed levels, as in Fig. 2a)")
    print(f"  max error vs plaintext model: {worst:.2e}")
    print(f"  per-request latency: mean {latency['mean_s']*1e3:.1f} ms, "
          f"p95 {latency['p95_s']*1e3:.1f} ms; max queue depth "
          f"{stats['max_queue_depth']}; {stats['throughput_rps']:.1f} req/s")
    print(f"  pool: {stats['executor']['completed']} served, "
          f"{stats['executor']['worker_crashes']} crashes\n")

    # --- the Fig. 1 projection at bootstrappable parameters ------------
    # The client workload comes from the traced plan's I/O boundary,
    # projected onto the paper's N = 2^16 ring.
    workload = plan_to_workload(plan, degree=1 << 16)
    sim = ClientSimulator(config=abc_fhe(), workload=workload)
    abc_client = (
        sim.encode_encrypt().latency_seconds + sim.decode_decrypt().latency_seconds
    )
    cpu = CpuModel()
    cpu_client = cpu.encode_encrypt_seconds(workload) + cpu.decode_decrypt_seconds(
        workload
    )
    server = cal.SERVER_ASIC_EVAL_SECONDS

    print("projected per-inference breakdown at N = 2^16 (server = [9]-class ASIC):")
    for name, client in (("CPU client", cpu_client), ("ABC-FHE client", abc_client)):
        total = client + server
        print(f"  {name:15s} client {client*1e3:8.2f} ms ({client/total*100:5.1f}%)   "
              f"server {server*1e3:6.2f} ms ({server/total*100:5.1f}%)")
    print("  -> with ABC-FHE the client stops being the bottleneck (Fig. 1)")

    # --- the engine's served queue on the two RSCs ----------------------
    print(f"\nscheduling the engine's served queue ({NUM_CLIENTS} requests) "
          "on the dual RSCs:")
    for result in policies:
        print(f"  {result.policy:13s} {result.makespan_seconds*1e3:8.3f} ms")


if __name__ == "__main__":
    main()
