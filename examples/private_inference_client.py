"""Private inference round trip — the workload that motivates the paper.

A client holds a feature vector; a server holds a tiny model
(linear layer -> square activation -> linear layer, the classic
CKKS-friendly network).  The client encrypts, the server computes blind,
the client decrypts.  Afterwards the accelerator model reports what each
client phase would cost on ABC-FHE vs a CPU at bootstrappable parameters
— reproducing the Fig. 1 story end to end.

Run:  python examples/private_inference_client.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.accel import ClientSimulator, ClientWorkload, CpuModel, abc_fhe
from repro.accel import calibration as cal
from repro.ckks import CkksContext, toy_params


def server_side_model(ctx, ct, weights1, bias1, weights2, relin_keys):
    """Evaluate bias2-free  W2 * (W1 * x + b1)^2  homomorphically.

    Element-wise weights keep the example compact (a diagonal linear
    layer); the structure — multiply_plain, add_plain, square with
    relinearize + double rescale — is exactly the CKKS inference recipe.
    """
    ev = ctx.evaluator
    hidden = ev.multiply_plain(ct, weights1)
    hidden = ev.rescale(hidden, times=ctx.params.levels_per_multiplication)
    b1 = ctx.encoder.encode(bias1, level=hidden.level, scale=hidden.scale)
    hidden = ev.add_plain(hidden, b1)

    squared = ev.multiply_relin_rescale(hidden, hidden, relin_keys)

    w2 = ctx.encoder.encode(weights2, level=squared.level, scale=squared.scale)
    out = ev.multiply_plain(squared, w2)
    return ev.rescale(out, times=ctx.params.levels_per_multiplication)


def main() -> None:
    rng = np.random.default_rng(42)
    params = toy_params(degree=1 << 10, num_primes=10)
    ctx = CkksContext.create(params, seed=7)
    slots = params.slots

    features = rng.uniform(-1, 1, slots)
    w1 = rng.uniform(-0.5, 0.5, slots)
    b1 = rng.uniform(-0.1, 0.1, slots)
    w2 = rng.uniform(-0.5, 0.5, slots)

    # --- client: encode + encrypt --------------------------------------
    t0 = time.perf_counter()
    ct = ctx.encrypt(features)
    t_encrypt = time.perf_counter() - t0

    # --- server: blind inference ---------------------------------------
    relin_levels = [params.num_primes - 2]
    rlk = ctx.relin_keys(levels=relin_levels)
    w1_pt = ctx.encode(w1)
    t0 = time.perf_counter()
    result_ct = server_side_model(ctx, ct, w1_pt, b1, w2, rlk)
    t_server = time.perf_counter() - t0

    # --- client: decrypt + decode --------------------------------------
    t0 = time.perf_counter()
    prediction = ctx.decrypt_decode(result_ct).real
    t_decrypt = time.perf_counter() - t0

    expected = w2 * (w1 * features + b1) ** 2
    err = np.max(np.abs(prediction - expected))
    print("private inference: W2 * (W1*x + b1)^2")
    print(f"  ciphertext levels: {ct.level} -> {result_ct.level} "
          "(server consumed levels, as in Fig. 2a)")
    print(f"  max error vs plaintext model: {err:.2e}")
    print(f"  software timings: encrypt {t_encrypt*1e3:.1f} ms, "
          f"server {t_server*1e3:.1f} ms, decrypt {t_decrypt*1e3:.1f} ms\n")

    # --- the Fig. 1 projection at bootstrappable parameters ------------
    workload = ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)
    sim = ClientSimulator(config=abc_fhe(), workload=workload)
    abc_client = (
        sim.encode_encrypt().latency_seconds + sim.decode_decrypt().latency_seconds
    )
    cpu = CpuModel()
    cpu_client = cpu.encode_encrypt_seconds(workload) + cpu.decode_decrypt_seconds(
        workload
    )
    server = cal.SERVER_ASIC_EVAL_SECONDS

    print("projected per-inference breakdown at N = 2^16 (server = [9]-class ASIC):")
    for name, client in (("CPU client", cpu_client), ("ABC-FHE client", abc_client)):
        total = client + server
        print(f"  {name:15s} client {client*1e3:8.2f} ms ({client/total*100:5.1f}%)   "
              f"server {server*1e3:6.2f} ms ({server/total*100:5.1f}%)")
    print("  -> with ABC-FHE the client stops being the bottleneck (Fig. 1)")


if __name__ == "__main__":
    main()
