"""Private inference round trip — the workload that motivates the paper.

Clients hold feature vectors; a server holds a tiny model
(linear layer -> square activation -> linear layer, the classic
CKKS-friendly network).  Clients encrypt, the server computes blind, the
clients decrypt.  The server side is written once against the shared
evaluator surface, traced into a computation graph, compiled to a cached
:class:`~repro.runtime.plan.ExecutionPlan`, and **replayed in batch**
across every client request — the serving pattern the runtime exists
for.  The batched outputs are asserted bit-identical to eager one-op-at-
a-time evaluation.

Afterwards the accelerator model reports what each client phase would
cost on ABC-FHE vs a CPU at bootstrappable parameters — reproducing the
Fig. 1 story end to end, with the request queue derived from the traced
plan itself.

Run:  python examples/private_inference_client.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.accel import ClientSimulator, CpuModel, RscScheduler, abc_fhe
from repro.accel import calibration as cal
from repro.ckks import CkksContext, toy_params
from repro.runtime import (
    CtSpec,
    compile_fn,
    plan_to_request_queue,
    plan_to_workload,
)

NUM_CLIENTS = 4


def server_side_model(ev, ct, ctx, weights1, bias1, weights2, relin_keys):
    """Evaluate bias2-free  W2 * (W1 * x + b1)^2  against any evaluator.

    Element-wise weights keep the example compact (a diagonal linear
    layer); the structure — multiply_plain, add_plain, square with
    relinearize + double rescale — is exactly the CKKS inference recipe.
    ``ct`` may be a live ciphertext (eager) or a symbolic handle (traced):
    both carry the level/scale metadata the plaintext encodings need.
    """
    hidden = ev.multiply_plain(ct, weights1)
    hidden = ev.rescale(hidden, times=ctx.params.levels_per_multiplication)
    b1 = ctx.encoder.encode(bias1, level=hidden.level, scale=hidden.scale)
    hidden = ev.add_plain(hidden, b1)

    squared = ev.multiply_relin_rescale(hidden, hidden, relin_keys)

    w2 = ctx.encoder.encode(weights2, level=squared.level, scale=squared.scale)
    out = ev.multiply_plain(squared, w2)
    return ev.rescale(out, times=ctx.params.levels_per_multiplication)


def main() -> None:
    rng = np.random.default_rng(42)
    params = toy_params(degree=1 << 10, num_primes=10)
    ctx = CkksContext.create(params, seed=7)
    slots = params.slots

    features = [rng.uniform(-1, 1, slots) for _ in range(NUM_CLIENTS)]
    w1 = rng.uniform(-0.5, 0.5, slots)
    b1 = rng.uniform(-0.1, 0.1, slots)
    w2 = rng.uniform(-0.5, 0.5, slots)

    # --- clients: encode + encrypt -------------------------------------
    t0 = time.perf_counter()
    cts = [ctx.encrypt(f) for f in features]
    t_encrypt = (time.perf_counter() - t0) / NUM_CLIENTS

    # --- server: trace + compile the model once ------------------------
    rlk = ctx.relin_keys(levels=[params.num_primes - 2])
    w1_pt = ctx.encode(w1)
    plan = compile_fn(
        lambda ev, x: server_side_model(ev, x, ctx, w1_pt, b1, w2, rlk),
        ctx.evaluator,
        [CtSpec(level=params.num_primes, scale=params.scale)],
    )
    print(plan.summary())

    # --- server: batched blind inference over every client -------------
    t0 = time.perf_counter()
    batched = plan.run_batch([[ct] for ct in cts])
    t_server = (time.perf_counter() - t0) / NUM_CLIENTS

    # The batched executor must be bit-identical to eager dispatch.
    eager = server_side_model(ctx.evaluator, cts[0], ctx, w1_pt, b1, w2, rlk)
    for i, (a, b) in enumerate(zip(eager.parts, batched[0][0].parts)):
        assert np.array_equal(a.data, b.data), f"part {i} diverged from eager"

    # --- clients: decrypt + decode -------------------------------------
    t0 = time.perf_counter()
    predictions = [ctx.decrypt_decode(out[0]).real for out in batched]
    t_decrypt = (time.perf_counter() - t0) / NUM_CLIENTS

    worst = 0.0
    for f, pred in zip(features, predictions):
        expected = w2 * (w1 * f + b1) ** 2
        worst = max(worst, float(np.max(np.abs(pred - expected))))
    print(f"private inference: W2 * (W1*x + b1)^2, {NUM_CLIENTS} clients, one plan")
    print(f"  ciphertext levels: {cts[0].level} -> {batched[0][0].level} "
          "(server consumed levels, as in Fig. 2a)")
    print("  batched plan replay is bit-identical to eager evaluation")
    print(f"  max error vs plaintext model: {worst:.2e}")
    print(f"  software timings per client: encrypt {t_encrypt*1e3:.1f} ms, "
          f"server {t_server*1e3:.1f} ms, decrypt {t_decrypt*1e3:.1f} ms\n")

    # --- the Fig. 1 projection at bootstrappable parameters ------------
    # The client workload now comes from the traced plan's I/O boundary,
    # projected onto the paper's N = 2^16 ring.
    workload = plan_to_workload(plan, degree=1 << 16)
    sim = ClientSimulator(config=abc_fhe(), workload=workload)
    abc_client = (
        sim.encode_encrypt().latency_seconds + sim.decode_decrypt().latency_seconds
    )
    cpu = CpuModel()
    cpu_client = cpu.encode_encrypt_seconds(workload) + cpu.decode_decrypt_seconds(
        workload
    )
    server = cal.SERVER_ASIC_EVAL_SECONDS

    print("projected per-inference breakdown at N = 2^16 (server = [9]-class ASIC):")
    for name, client in (("CPU client", cpu_client), ("ABC-FHE client", abc_client)):
        total = client + server
        print(f"  {name:15s} client {client*1e3:8.2f} ms ({client/total*100:5.1f}%)   "
              f"server {server*1e3:6.2f} ms ({server/total*100:5.1f}%)")
    print("  -> with ABC-FHE the client stops being the bottleneck (Fig. 1)")

    # --- scheduling the real traced queue onto the two RSCs ------------
    queue = plan_to_request_queue(plan, requests=64)
    sched = RscScheduler(config=abc_fhe(), workload=workload)
    print(f"\nscheduling {queue.total} client tasks from the traced plan "
          "(64 requests):")
    for result in sched.compare(queue):
        print(f"  {result.policy:13s} {result.makespan_seconds*1e3:8.3f} ms")


if __name__ == "__main__":
    main()
