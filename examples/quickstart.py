"""Quickstart: encrypt a message, compute on it, decrypt — then ask the
accelerator model what ABC-FHE would do with the same client workload.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.accel import ClientSimulator, ClientWorkload, CpuModel, abc_fhe
from repro.ckks import CkksContext, toy_params


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A working CKKS client (reduced ring so this runs in seconds).
    # ------------------------------------------------------------------
    params = toy_params(degree=1 << 10, num_primes=8)
    ctx = CkksContext.create(params, seed=2025)
    print(f"ring degree N = {params.degree}, slots = {params.slots}, "
          f"levels = {params.num_primes}, scale = 2^{params.scale_bits}")

    message = np.array([3.14, -1.5, 2.0 + 1.0j, 0.25])
    ciphertext = ctx.encrypt(message)
    print(f"encrypted at level {ciphertext.level} "
          f"({ciphertext.size} polynomial parts)")

    # Homomorphic work: (x + x) on the server, no key needed.
    doubled = ctx.evaluator.add(ciphertext, ciphertext)
    decrypted = ctx.decrypt_decode(doubled)
    print("decrypt(2 * x)  =", np.round(decrypted[:4], 6))
    print("expected        =", np.round(2 * message, 6))
    error = np.max(np.abs(decrypted[:4] - 2 * message))
    print(f"max error       = {error:.2e}\n")

    # ------------------------------------------------------------------
    # 2. The same client tasks on the modeled ABC-FHE accelerator,
    #    at the paper's bootstrappable parameters (N = 2^16, 24 levels).
    # ------------------------------------------------------------------
    workload = ClientWorkload(degree=1 << 16, enc_levels=24, dec_levels=2)
    sim = ClientSimulator(config=abc_fhe(), workload=workload)
    enc = sim.encode_encrypt()
    dec = sim.decode_decrypt()
    cpu = CpuModel()

    print("ABC-FHE model at bootstrappable parameters (N = 2^16):")
    print(f"  encode+encrypt : {enc.latency_seconds*1e6:8.1f} us "
          f"({enc.bound_by}-bound)")
    print(f"  decode+decrypt : {dec.latency_seconds*1e6:8.1f} us "
          f"({dec.bound_by}-bound)")
    print(f"  CPU (Lattigo-class, 1 core) encode+encrypt: "
          f"{cpu.encode_encrypt_seconds(workload)*1e3:7.1f} ms "
          f"-> {cpu.encode_encrypt_seconds(workload)/enc.latency_seconds:6.0f}x speed-up")
    print(f"  CPU decode+decrypt:                          "
          f"{cpu.decode_decrypt_seconds(workload)*1e3:7.1f} ms "
          f"-> {cpu.decode_decrypt_seconds(workload)/dec.latency_seconds:6.0f}x speed-up")


if __name__ == "__main__":
    main()
